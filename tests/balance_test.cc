// Tests for IO/CPU classification, maximum parallelism, effective
// bandwidth, and the IO-CPU balance point solver (paper §2.2-2.3).

#include <gtest/gtest.h>

#include <cmath>

#include "sched/balance.h"
#include "sched/machine.h"
#include "sched/task.h"

namespace xprs {
namespace {

TaskProfile Task(double rate, double seq_time = 10.0,
                 IoPattern pattern = IoPattern::kSequential) {
  static TaskId next_id = 1000;
  TaskProfile t;
  t.id = next_id++;
  t.seq_time = seq_time;
  t.total_ios = rate * seq_time;
  t.pattern = pattern;
  return t;
}

TEST(MachineTest, PaperConfigNumbers) {
  MachineConfig m = MachineConfig::PaperConfig();
  EXPECT_EQ(m.num_cpus, 8);
  EXPECT_EQ(m.num_disks, 4);
  EXPECT_DOUBLE_EQ(m.seq_bandwidth(), 388.0);
  EXPECT_DOUBLE_EQ(m.almost_seq_bandwidth(), 240.0);
  EXPECT_DOUBLE_EQ(m.rand_bandwidth(), 140.0);
  EXPECT_DOUBLE_EQ(m.nominal_bandwidth(), 240.0);
  EXPECT_DOUBLE_EQ(m.io_cpu_threshold(), 30.0);
}

TEST(ClassificationTest, ThresholdIsBOverN) {
  MachineConfig m = MachineConfig::PaperConfig();
  EXPECT_FALSE(IsIoBound(Task(5.0), m));     // r_min
  EXPECT_FALSE(IsIoBound(Task(29.9), m));
  EXPECT_FALSE(IsIoBound(Task(30.0), m));    // boundary is CPU-bound
  EXPECT_TRUE(IsIoBound(Task(30.1), m));
  EXPECT_TRUE(IsIoBound(Task(70.0), m));     // r_max
}

TEST(MaxParallelismTest, CpuBoundGetsAllProcessors) {
  MachineConfig m = MachineConfig::PaperConfig();
  EXPECT_DOUBLE_EQ(MaxParallelism(Task(5.0), m), 8.0);
  EXPECT_DOUBLE_EQ(MaxParallelism(Task(0.0), m), 8.0);
}

TEST(MaxParallelismTest, IoBoundLimitedByBandwidth) {
  MachineConfig m = MachineConfig::PaperConfig();
  // Sequential stream: B = 240 once parallel; 240/60 = 4.
  EXPECT_DOUBLE_EQ(MaxParallelism(Task(60.0), m), 4.0);
  // Random stream: B = 140; 140/70 = 2.
  EXPECT_DOUBLE_EQ(MaxParallelism(Task(70.0, 10.0, IoPattern::kRandom), m),
                   2.0);
}

TEST(MaxParallelismTest, NeverBelowOneOrAboveN) {
  MachineConfig m = MachineConfig::PaperConfig();
  EXPECT_DOUBLE_EQ(MaxParallelism(Task(500.0), m), 1.0);
  EXPECT_DOUBLE_EQ(MaxParallelism(Task(31.0), m), 240.0 / 31.0);
}

TEST(EffectiveBandwidthTest, SingleSequentialSingleProcessIsStrict) {
  MachineConfig m = MachineConfig::PaperConfig();
  EXPECT_DOUBLE_EQ(EffectiveBandwidth(m, {{50.0, IoPattern::kSequential, 1.0}}),
                   388.0);
}

TEST(EffectiveBandwidthTest, SingleParallelSequentialIsAlmostSeq) {
  MachineConfig m = MachineConfig::PaperConfig();
  EXPECT_DOUBLE_EQ(EffectiveBandwidth(m, {{50.0, IoPattern::kSequential, 4.0}}),
                   240.0);
}

TEST(EffectiveBandwidthTest, SingleRandomIsRandom) {
  MachineConfig m = MachineConfig::PaperConfig();
  EXPECT_DOUBLE_EQ(EffectiveBandwidth(m, {{50.0, IoPattern::kRandom, 4.0}}),
                   140.0);
}

TEST(EffectiveBandwidthTest, EvenSequentialSplitDropsToRandom) {
  MachineConfig m = MachineConfig::PaperConfig();
  // Equal streams: the disks seek between the two -> random bandwidth.
  EXPECT_DOUBLE_EQ(
      EffectiveBandwidth(m, {{100.0, IoPattern::kSequential, 2.0},
                             {100.0, IoPattern::kSequential, 2.0}}),
      140.0);
}

TEST(EffectiveBandwidthTest, MatchesPaperPairEquation) {
  MachineConfig m = MachineConfig::PaperConfig();
  // Paper: B = Br + (1 - u/v)(Bs - Br) for u < v, capped at the almost-seq
  // ceiling for concurrent parallel streams.
  const double br = 140.0, bs = 388.0, cap = 240.0;
  for (double u : {10.0, 40.0, 90.0}) {
    const double v = 100.0;
    double expected = std::min(cap, br + (1.0 - u / v) * (bs - br));
    EXPECT_NEAR(EffectiveBandwidth(m, {{u, IoPattern::kSequential, 2.0},
                                       {v, IoPattern::kSequential, 3.0}}),
                expected, 1e-9)
        << "u=" << u;
  }
}

TEST(EffectiveBandwidthTest, RandomDominantForcesRandom) {
  MachineConfig m = MachineConfig::PaperConfig();
  EXPECT_DOUBLE_EQ(
      EffectiveBandwidth(m, {{20.0, IoPattern::kSequential, 2.0},
                             {120.0, IoPattern::kRandom, 3.0}}),
      140.0);
}

TEST(EffectiveBandwidthTest, SequentialDominantRecoversBandwidth) {
  MachineConfig m = MachineConfig::PaperConfig();
  // Moderately dominant sequential stream: above random, below the cap.
  double b = EffectiveBandwidth(m, {{120.0, IoPattern::kSequential, 4.0},
                                    {80.0, IoPattern::kRandom, 1.0}});
  EXPECT_GT(b, 140.0);
  EXPECT_LT(b, 240.0);
  // Strongly dominant sequential stream: hits the almost-sequential cap.
  EXPECT_DOUBLE_EQ(
      EffectiveBandwidth(m, {{200.0, IoPattern::kSequential, 4.0},
                             {20.0, IoPattern::kRandom, 1.0}}),
      240.0);
}

TEST(EffectiveBandwidthTest, NoDemandReturnsSequentialCeiling) {
  MachineConfig m = MachineConfig::PaperConfig();
  EXPECT_DOUBLE_EQ(EffectiveBandwidth(m, {}), 388.0);
}

TEST(BalanceConstantBTest, PaperClosedForm) {
  // N=8, B=240: ci=60, cj=10 -> xi=(240-80)/50=3.2, xj=(480-240)/50=4.8.
  BalancePoint bp = SolveBalanceConstantB(60.0, 10.0, 8, 240.0);
  ASSERT_TRUE(bp.valid);
  EXPECT_TRUE(bp.exact);
  EXPECT_NEAR(bp.xi, 3.2, 1e-9);
  EXPECT_NEAR(bp.xj, 4.8, 1e-9);
  EXPECT_NEAR(bp.xi + bp.xj, 8.0, 1e-9);
  EXPECT_NEAR(60.0 * bp.xi + 10.0 * bp.xj, 240.0, 1e-9);
}

TEST(BalanceConstantBTest, SwappedArgumentsMapBack) {
  BalancePoint bp = SolveBalanceConstantB(10.0, 60.0, 8, 240.0);
  ASSERT_TRUE(bp.valid);
  EXPECT_NEAR(bp.xi, 4.8, 1e-9);  // xi belongs to the 10 io/s task
  EXPECT_NEAR(bp.xj, 3.2, 1e-9);
}

TEST(BalanceConstantBTest, BothIoBoundInvalid) {
  EXPECT_FALSE(SolveBalanceConstantB(60.0, 40.0, 8, 240.0).valid);
}

TEST(BalanceConstantBTest, BothCpuBoundInvalid) {
  EXPECT_FALSE(SolveBalanceConstantB(20.0, 10.0, 8, 240.0).valid);
}

TEST(BalanceConstantBTest, EqualRatesInvalid) {
  EXPECT_FALSE(SolveBalanceConstantB(30.0, 30.0, 8, 240.0).valid);
}

// Property sweep: for every (C_io, C_cpu) pair straddling the threshold the
// constant-B balance point satisfies both equations with positive degrees.
class BalanceSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(BalanceSweepTest, SatisfiesBothEquations) {
  auto [ci, cj] = GetParam();
  MachineConfig m = MachineConfig::PaperConfig();
  BalancePoint bp =
      SolveBalanceConstantB(ci, cj, m.num_cpus, m.nominal_bandwidth());
  ASSERT_TRUE(bp.valid) << "ci=" << ci << " cj=" << cj;
  EXPECT_GT(bp.xi, 0.0);
  EXPECT_GT(bp.xj, 0.0);
  EXPECT_NEAR(bp.xi + bp.xj, 8.0, 1e-9);
  EXPECT_NEAR(ci * bp.xi + cj * bp.xj, 240.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    RateGrid, BalanceSweepTest,
    ::testing::Combine(::testing::Values(31.0, 35.0, 45.0, 60.0, 70.0),
                       ::testing::Values(5.0, 10.0, 15.0, 25.0, 29.0)));

// Coupled solver: the returned point must satisfy the coupled equations
// with the *effective* bandwidth.
class CoupledBalanceTest
    : public ::testing::TestWithParam<std::tuple<double, double, int, int>> {};

TEST_P(CoupledBalanceTest, RootSatisfiesCoupledEquations) {
  auto [ci, cj, pi_int, pj_int] = GetParam();
  MachineConfig m = MachineConfig::PaperConfig();
  TaskProfile ti = Task(ci, 10.0, static_cast<IoPattern>(pi_int));
  TaskProfile tj = Task(cj, 10.0, static_cast<IoPattern>(pj_int));
  BalancePoint bp = SolveBalance(ti, tj, m, /*model_seek_interference=*/true);
  if (!bp.valid || !bp.exact) return;  // fallback cases checked elsewhere
  EXPECT_NEAR(bp.xi + bp.xj, 8.0, 1e-6);
  std::vector<IoStream> streams = {{ci * bp.xi, ti.pattern, bp.xi},
                                   {cj * bp.xj, tj.pattern, bp.xj}};
  double beff = EffectiveBandwidth(m, streams);
  EXPECT_NEAR(ci * bp.xi + cj * bp.xj, beff, 1e-5);
  EXPECT_NEAR(bp.effective_bandwidth, beff, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    PatternGrid, CoupledBalanceTest,
    ::testing::Combine(::testing::Values(35.0, 50.0, 65.0),
                       ::testing::Values(5.0, 12.0, 25.0),
                       ::testing::Values(0, 1),    // IoPattern of task i
                       ::testing::Values(0, 1)));  // IoPattern of task j

TEST(CoupledBalanceTest, BothRandomUsesRandomBandwidthClosedForm) {
  MachineConfig m = MachineConfig::PaperConfig();
  TaskProfile ti = Task(60.0, 10.0, IoPattern::kRandom);
  TaskProfile tj = Task(10.0, 10.0, IoPattern::kRandom);
  BalancePoint bp = SolveBalance(ti, tj, m);
  ASSERT_TRUE(bp.valid);
  // B = Br = 140: xi = (140-80)/50 = 1.2, xj = 6.8.
  EXPECT_NEAR(bp.xi, 1.2, 1e-9);
  EXPECT_NEAR(bp.xj, 6.8, 1e-9);
  EXPECT_DOUBLE_EQ(bp.effective_bandwidth, 140.0);
}

TEST(CoupledBalanceTest, SeekInterferenceLowersEffectiveBandwidth) {
  MachineConfig m = MachineConfig::PaperConfig();
  TaskProfile ti = Task(65.0, 10.0, IoPattern::kSequential);
  TaskProfile tj = Task(10.0, 10.0, IoPattern::kSequential);
  BalancePoint with = SolveBalance(ti, tj, m, true);
  BalancePoint without = SolveBalance(ti, tj, m, false);
  ASSERT_TRUE(with.valid);
  ASSERT_TRUE(without.valid);
  // Two concurrent sequential streams cannot do better than nominal.
  EXPECT_LE(with.effective_bandwidth, without.effective_bandwidth + 1e-9);
}

TEST(CoupledBalanceTest, WithoutInterferenceMatchesClosedForm) {
  MachineConfig m = MachineConfig::PaperConfig();
  TaskProfile ti = Task(60.0);
  TaskProfile tj = Task(10.0);
  BalancePoint bp = SolveBalance(ti, tj, m, false);
  ASSERT_TRUE(bp.valid);
  EXPECT_NEAR(bp.xi, 3.2, 1e-9);
  EXPECT_NEAR(bp.xj, 4.8, 1e-9);
}

}  // namespace
}  // namespace xprs
