// Tests for the physical §3 workload builder: calibration relations hit
// the paper's measured io rates, and TextWidthForIoRate spans the band.

#include <gtest/gtest.h>

#include "workload/relations.h"

namespace xprs {
namespace {

class RelationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    array_ = std::make_unique<DiskArray>(4, DiskMode::kInstant);
    catalog_ = std::make_unique<Catalog>(array_.get());
  }
  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<Catalog> catalog_;
  Rng rng_{42};
};

TEST_F(RelationsTest, RMaxScanRunsAtSeventyIoPerSecond) {
  auto table = BuildRMax(catalog_.get(), 120, &rng_);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->file().num_pages(), 120u);  // one tuple per page
  auto m = MeasureSeqScan(*table);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->io_rate(), 70.0, 2.5);
}

TEST_F(RelationsTest, RMinScanIsMostCpuBound) {
  // Paper construction: b = NULL. Our tuple header is leaner than
  // Postgres's (10 bytes vs ~40), so ~800 tuples fit a page instead of
  // ~400 and the scan measures ~2.6 io/s — *more* CPU-bound than the
  // paper's 5 io/s r_min. The 5 io/s band edge itself is exercised by
  // WidthForRateTest below.
  auto table = BuildRMin(catalog_.get(), 4000, &rng_);
  ASSERT_TRUE(table.ok());
  EXPECT_GT((*table)->file().TuplesPerPage(), 300.0);
  auto m = MeasureSeqScan(*table);
  ASSERT_TRUE(m.ok());
  EXPECT_LT(m->io_rate(), 5.5);
  EXPECT_GT(m->io_rate(), 1.5);
}

TEST_F(RelationsTest, IndexScanIsIoBound) {
  auto table = BuildRelation(catalog_.get(), "t", 2000, 50, 1000, &rng_);
  ASSERT_TRUE(table.ok());
  auto m = MeasureIndexScan(*table, KeyRange{0, 999});
  ASSERT_TRUE(m.ok());
  // ~1/(1/35) = 34+ io/s: above the B/N = 30 threshold.
  EXPECT_GT(m->io_rate(), 30.0);
  EXPECT_LT(m->io_rate(), 36.0);
  EXPECT_EQ(m->tuples, 2000u);
}

// The width->rate mapping must hit requested rates across the §3 band.
class WidthForRateTest : public RelationsTest,
                         public ::testing::WithParamInterface<double> {};

TEST_P(WidthForRateTest, AchievesRequestedRate) {
  double target = GetParam();
  int width = TextWidthForIoRate(target);
  auto table = BuildRelation(catalog_.get(),
                             "t" + std::to_string(static_cast<int>(target)),
                             width >= 4000 ? 200 : 3000, width, 1000, &rng_);
  ASSERT_TRUE(table.ok());
  auto m = MeasureSeqScan(*table);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->io_rate(), target, target * 0.15 + 1.0)
      << "width=" << width;
}

INSTANTIATE_TEST_SUITE_P(RateBand, WidthForRateTest,
                         ::testing::Values(5.0, 10.0, 20.0, 30.0, 45.0, 60.0,
                                           70.0));

TEST_F(RelationsTest, ToTaskProfileCarriesFields) {
  MeasuredProfile m;
  m.seq_time = 10.0;
  m.ios = 500.0;
  m.tuples = 1000;
  TaskProfile t = ToTaskProfile(m, 5, "scan", IoPattern::kRandom);
  EXPECT_EQ(t.id, 5);
  EXPECT_DOUBLE_EQ(t.io_rate(), 50.0);
  EXPECT_EQ(t.pattern, IoPattern::kRandom);
}

TEST_F(RelationsTest, NullTextRoundTrips) {
  auto table = BuildRelation(catalog_.get(), "nulls", 100, -1, 10, &rng_);
  ASSERT_TRUE(table.ok());
  auto tuple = (*table)->file().ReadTuple(TupleId{0, 0});
  ASSERT_TRUE(tuple.ok());
  EXPECT_TRUE(IsNull(tuple->value(1)));
}

}  // namespace
}  // namespace xprs
