// Tests for the storage substrate: pages, tuples, the striped disk array,
// heap files and the buffer pool.

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/disk_array.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/tuple.h"
#include "util/rng.h"

namespace xprs {
namespace {

TEST(PageTest, EmptyPageHasNoTuples) {
  Page p;
  EXPECT_EQ(p.num_tuples(), 0);
  EXPECT_GT(p.FreeSpace(), 8000u);
}

TEST(PageTest, AddAndGetRoundTrip) {
  Page p;
  const uint8_t data[] = {1, 2, 3, 4, 5};
  auto slot = p.AddTuple(data, sizeof(data));
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(slot.value(), 0);
  const uint8_t* out;
  uint16_t size;
  ASSERT_TRUE(p.GetTuple(0, &out, &size).ok());
  ASSERT_EQ(size, sizeof(data));
  EXPECT_EQ(0, memcmp(out, data, size));
}

TEST(PageTest, FillsUntilExhausted) {
  Page p;
  uint8_t data[100] = {};
  int added = 0;
  for (;;) {
    auto slot = p.AddTuple(data, sizeof(data));
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    ++added;
  }
  // 8192 bytes / (100 payload + 4 slot) ~ 78 tuples.
  EXPECT_GT(added, 70);
  EXPECT_LT(added, 82);
  EXPECT_EQ(p.num_tuples(), added);
}

TEST(PageTest, SingleGiantTupleFits) {
  Page p;
  std::vector<uint8_t> data(MaxTuplePayload(), 0xAB);
  ASSERT_TRUE(p.AddTuple(data.data(), static_cast<uint16_t>(data.size())).ok());
  EXPECT_EQ(p.FreeSpace(), 0u);
  const uint8_t* out;
  uint16_t size;
  ASSERT_TRUE(p.GetTuple(0, &out, &size).ok());
  EXPECT_EQ(size, data.size());
}

TEST(PageTest, InvalidSlotRejected) {
  Page p;
  const uint8_t* out;
  uint16_t size;
  EXPECT_EQ(p.GetTuple(0, &out, &size).code(), StatusCode::kOutOfRange);
}

TEST(PageTest, InitResets) {
  Page p;
  const uint8_t data[] = {9};
  ASSERT_TRUE(p.AddTuple(data, 1).ok());
  p.Init();
  EXPECT_EQ(p.num_tuples(), 0);
}

TEST(TupleTest, SerializeDeserializeRoundTrip) {
  Schema schema = Schema::PaperSchema();
  Tuple t({Value(int32_t{42}), Value(std::string("hello"))});
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(t.Serialize(schema, &bytes).ok());
  auto back = Tuple::Deserialize(schema, bytes.data(),
                                 static_cast<uint16_t>(bytes.size()));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), t);
}

TEST(TupleTest, NullsSurviveRoundTrip) {
  Schema schema = Schema::PaperSchema();
  Tuple t({Value(int32_t{7}), Value(std::monostate{})});
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(t.Serialize(schema, &bytes).ok());
  auto back = Tuple::Deserialize(schema, bytes.data(),
                                 static_cast<uint16_t>(bytes.size()));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(IsNull(back.value().value(1)));
}

TEST(TupleTest, TypeMismatchRejected) {
  Schema schema = Schema::PaperSchema();
  Tuple t({Value(std::string("not an int")), Value(std::string("x"))});
  std::vector<uint8_t> bytes;
  EXPECT_EQ(t.Serialize(schema, &bytes).code(), StatusCode::kInvalidArgument);
}

TEST(TupleTest, ArityMismatchRejected) {
  Schema schema = Schema::PaperSchema();
  Tuple t({Value(int32_t{1})});
  std::vector<uint8_t> bytes;
  EXPECT_FALSE(t.Serialize(schema, &bytes).ok());
}

TEST(TupleTest, TruncatedDataRejected) {
  Schema schema = Schema::PaperSchema();
  Tuple t({Value(int32_t{42}), Value(std::string("hello"))});
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(t.Serialize(schema, &bytes).ok());
  auto bad = Tuple::Deserialize(schema, bytes.data(),
                                static_cast<uint16_t>(bytes.size() - 3));
  EXPECT_FALSE(bad.ok());
}

TEST(TupleTest, CompareValuesOrdersNullFirst) {
  EXPECT_LT(CompareValues(Value(std::monostate{}), Value(int32_t{1})), 0);
  EXPECT_GT(CompareValues(Value(int32_t{1}), Value(std::monostate{})), 0);
  EXPECT_EQ(CompareValues(Value(int32_t{5}), Value(int32_t{5})), 0);
  EXPECT_LT(CompareValues(Value(std::string("a")), Value(std::string("b"))),
            0);
}

TEST(TupleTest, ConcatJoinsValuesAndSchemas) {
  Tuple l({Value(int32_t{1})});
  Tuple r({Value(std::string("x")), Value(int32_t{2})});
  Tuple joined = Tuple::Concat(l, r);
  EXPECT_EQ(joined.size(), 3u);
  Schema s = Schema::Concat(Schema({{"a", TypeId::kInt4}}),
                            Schema({{"b", TypeId::kText},
                                    {"c", TypeId::kInt4}}));
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.column(2).name, "c");
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema s = Schema::PaperSchema();
  ASSERT_TRUE(s.ColumnIndex("b").ok());
  EXPECT_EQ(s.ColumnIndex("b").value(), 1u);
  EXPECT_EQ(s.ColumnIndex("zz").status().code(), StatusCode::kNotFound);
}

TEST(DiskArrayTest, RoundRobinStriping) {
  DiskArray array(4, DiskMode::kInstant);
  for (int i = 0; i < 8; ++i) {
    BlockId b = array.AllocateBlock();
    EXPECT_EQ(b, static_cast<BlockId>(i));
    EXPECT_EQ(array.DiskOf(b), i % 4);
  }
  EXPECT_EQ(array.num_blocks(), 8u);
}

TEST(DiskArrayTest, ReadWriteRoundTrip) {
  DiskArray array(2, DiskMode::kInstant);
  BlockId b = array.AllocateBlock();
  Page p;
  const uint8_t data[] = {0xDE, 0xAD};
  ASSERT_TRUE(p.AddTuple(data, 2).ok());
  ASSERT_TRUE(array.WriteBlock(b, p).ok());
  Page q;
  ASSERT_TRUE(array.ReadBlock(b, &q).ok());
  const uint8_t* out;
  uint16_t size;
  ASSERT_TRUE(q.GetTuple(0, &out, &size).ok());
  EXPECT_EQ(size, 2);
  EXPECT_EQ(out[0], 0xDE);
}

TEST(DiskArrayTest, OutOfRangeRejected) {
  DiskArray array(2, DiskMode::kInstant);
  Page p;
  EXPECT_EQ(array.ReadBlock(5, &p).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(array.WriteBlock(5, p).code(), StatusCode::kOutOfRange);
}

TEST(DiskArrayTest, SequentialScanCountsSequential) {
  DiskArray array(4, DiskMode::kInstant);
  for (int i = 0; i < 64; ++i) array.AllocateBlock();
  Page p;
  for (BlockId b = 0; b < 64; ++b) ASSERT_TRUE(array.ReadBlock(b, &p).ok());
  DiskStats total = array.total_stats();
  EXPECT_EQ(total.reads, 64u);
  // A striped scan advances each disk's local index by one per round: all
  // sequential.
  EXPECT_EQ(total.seq_reads, 64u);
  EXPECT_EQ(total.rand_reads, 0u);
}

TEST(DiskArrayTest, RandomAccessCountsRandom) {
  DiskArray array(4, DiskMode::kInstant);
  for (int i = 0; i < 256; ++i) array.AllocateBlock();
  Rng rng(3);
  Page p;
  for (int i = 0; i < 100; ++i) {
    BlockId b = static_cast<BlockId>(rng.NextUint64(256));
    ASSERT_TRUE(array.ReadBlock(b, &p).ok());
  }
  DiskStats total = array.total_stats();
  EXPECT_EQ(total.reads, 100u);
  EXPECT_GT(total.rand_reads, 50u);  // overwhelmingly random
}

TEST(DiskArrayTest, BusyTimeTracksServiceModel) {
  DiskTimings t;
  DiskArray array(1, DiskMode::kInstant, t);
  for (int i = 0; i < 10; ++i) array.AllocateBlock();
  Page p;
  for (BlockId b = 0; b < 10; ++b) ASSERT_TRUE(array.ReadBlock(b, &p).ok());
  // 10 sequential reads at 1/97 s each.
  EXPECT_NEAR(array.total_stats().busy_seconds, 10.0 / 97.0, 1e-9);
}

TEST(DiskArrayTest, ResetStatsClears) {
  DiskArray array(2, DiskMode::kInstant);
  array.AllocateBlock();
  Page p;
  ASSERT_TRUE(array.ReadBlock(0, &p).ok());
  array.ResetStats();
  EXPECT_EQ(array.total_stats().reads, 0u);
}

HeapFile MakeLoadedFile(DiskArray* array, int num_tuples, int text_width) {
  HeapFile file("r", Schema::PaperSchema(), array);
  for (int i = 0; i < num_tuples; ++i) {
    Tuple t({Value(int32_t{i}), Value(std::string(text_width, 'x'))});
    EXPECT_TRUE(file.Append(t).ok());
  }
  EXPECT_TRUE(file.Flush().ok());
  return file;
}

TEST(HeapFileTest, AppendAndScanBack) {
  DiskArray array(4, DiskMode::kInstant);
  HeapFile file = MakeLoadedFile(&array, 500, 20);
  EXPECT_EQ(file.num_tuples(), 500u);
  EXPECT_GT(file.num_pages(), 0u);

  int count = 0;
  Page page;
  for (uint32_t p = 0; p < file.num_pages(); ++p) {
    ASSERT_TRUE(file.ReadPage(p, &page).ok());
    for (uint16_t s = 0; s < page.num_tuples(); ++s) {
      const uint8_t* data;
      uint16_t size;
      ASSERT_TRUE(page.GetTuple(s, &data, &size).ok());
      auto t = Tuple::Deserialize(file.schema(), data, size);
      ASSERT_TRUE(t.ok());
      EXPECT_EQ(std::get<int32_t>(t.value().value(0)), count);
      ++count;
    }
  }
  EXPECT_EQ(count, 500);
}

TEST(HeapFileTest, TupleSizeControlsPagesPerTuple) {
  DiskArray array(4, DiskMode::kInstant);
  // r_max style: one fat tuple per page.
  HeapFile rmax = MakeLoadedFile(&array, 50, 7000);
  EXPECT_EQ(rmax.num_pages(), 50u);
  // r_min style: b is tiny -> hundreds of tuples per page.
  HeapFile rmin = MakeLoadedFile(&array, 1000, 0);
  EXPECT_LT(rmin.num_pages(), 5u);
  EXPECT_GT(rmin.TuplesPerPage(), 200.0);
}

TEST(HeapFileTest, ReadTupleByTid) {
  DiskArray array(4, DiskMode::kInstant);
  HeapFile file = MakeLoadedFile(&array, 100, 100);
  auto t = file.ReadTuple(TupleId{0, 3});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(std::get<int32_t>(t->value(0)), 3);
}

TEST(HeapFileTest, OversizedTupleRejected) {
  DiskArray array(1, DiskMode::kInstant);
  HeapFile file("r", Schema::PaperSchema(), &array);
  Tuple t({Value(int32_t{1}), Value(std::string(9000, 'x'))});
  EXPECT_EQ(file.Append(t).code(), StatusCode::kInvalidArgument);
}

TEST(HeapFileTest, UnflushedTailIsNotReadable) {
  DiskArray array(1, DiskMode::kInstant);
  HeapFile file("r", Schema::PaperSchema(), &array);
  ASSERT_TRUE(file.Append(Tuple({Value(int32_t{1}), Value(std::string())}))
                  .ok());
  Page p;
  EXPECT_EQ(file.ReadPage(0, &p).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(file.Flush().ok());
  EXPECT_TRUE(file.ReadPage(0, &p).ok());
}

TEST(BufferPoolTest, HitAfterMiss) {
  DiskArray array(2, DiskMode::kInstant);
  BlockId b = array.AllocateBlock();
  BufferPool pool(&array, 4);
  {
    auto h = pool.Fetch(b);
    ASSERT_TRUE(h.ok());
  }
  {
    auto h = pool.Fetch(b);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPoolTest, EvictsUnpinnedFrames) {
  DiskArray array(1, DiskMode::kInstant);
  std::vector<BlockId> blocks;
  for (int i = 0; i < 10; ++i) blocks.push_back(array.AllocateBlock());
  BufferPool pool(&array, 2);
  for (BlockId b : blocks) {
    auto h = pool.Fetch(b);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(pool.stats().misses, 10u);  // pool smaller than working set
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  DiskArray array(1, DiskMode::kInstant);
  BlockId a = array.AllocateBlock();
  BlockId b = array.AllocateBlock();
  BlockId c = array.AllocateBlock();
  BufferPool pool(&array, 2);
  auto h1 = pool.Fetch(a);
  auto h2 = pool.Fetch(b);
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  auto h3 = pool.Fetch(c);
  EXPECT_EQ(h3.status().code(), StatusCode::kResourceExhausted);
  h1->Release();
  auto h4 = pool.Fetch(c);
  EXPECT_TRUE(h4.ok());
}

TEST(BufferPoolTest, PageContentCorrectAcrossEviction) {
  DiskArray array(1, DiskMode::kInstant);
  std::vector<BlockId> blocks;
  for (int i = 0; i < 6; ++i) {
    BlockId b = array.AllocateBlock();
    Page p;
    uint8_t byte = static_cast<uint8_t>(i);
    EXPECT_TRUE(p.AddTuple(&byte, 1).ok());
    EXPECT_TRUE(array.WriteBlock(b, p).ok());
    blocks.push_back(b);
  }
  BufferPool pool(&array, 2);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 6; ++i) {
      auto h = pool.Fetch(blocks[i]);
      ASSERT_TRUE(h.ok());
      const uint8_t* data;
      uint16_t size;
      ASSERT_TRUE(h->page().GetTuple(0, &data, &size).ok());
      EXPECT_EQ(data[0], static_cast<uint8_t>(i));
    }
  }
}

TEST(BufferPoolTest, ConcurrentFetchesAreConsistent) {
  DiskArray array(4, DiskMode::kInstant);
  constexpr int kBlocks = 64;
  for (int i = 0; i < kBlocks; ++i) {
    BlockId b = array.AllocateBlock();
    Page p;
    uint8_t byte = static_cast<uint8_t>(i);
    ASSERT_TRUE(p.AddTuple(&byte, 1).ok());
    ASSERT_TRUE(array.WriteBlock(b, p).ok());
  }
  BufferPool pool(&array, 16);
  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 2000; ++i) {
        BlockId b = static_cast<BlockId>(rng.NextUint64(kBlocks));
        auto h = pool.Fetch(b);
        if (!h.ok()) {
          ++errors;
          continue;
        }
        const uint8_t* data;
        uint16_t size;
        if (!h->page().GetTuple(0, &data, &size).ok() ||
            data[0] != static_cast<uint8_t>(b)) {
          ++errors;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(pool.stats().hits + pool.stats().misses, 8000u);
}

TEST(CatalogTest, CreateAndLookup) {
  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  auto t = catalog.CreateTable("r1", Schema::PaperSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(catalog.GetTable("r1").ok());
  EXPECT_EQ(catalog.GetTable("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.CreateTable("r1", Schema::PaperSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, StatsComputedFromData) {
  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  Table* table = catalog.CreateTable("r1", Schema::PaperSchema()).value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table->file()
                    .Append(Tuple({Value(int32_t{i * 3}),
                                   Value(std::string(10, 'b'))}))
                    .ok());
  }
  ASSERT_TRUE(table->file().Flush().ok());
  ASSERT_TRUE(table->ComputeStats().ok());
  EXPECT_EQ(table->stats().num_tuples, 100u);
  EXPECT_TRUE(table->stats().has_key_bounds);
  EXPECT_EQ(table->stats().min_key, 0);
  EXPECT_EQ(table->stats().max_key, 297);
  EXPECT_GT(table->stats().tuples_per_page, 1.0);
}

TEST(CatalogTest, BuildIndexOnKeyColumn) {
  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  Table* table = catalog.CreateTable("r1", Schema::PaperSchema()).value();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(table->file()
                    .Append(Tuple({Value(int32_t{i % 50}),
                                   Value(std::string(5, 'b'))}))
                    .ok());
  }
  ASSERT_TRUE(table->file().Flush().ok());
  ASSERT_TRUE(table->BuildIndex(0).ok());
  ASSERT_NE(table->index(), nullptr);
  EXPECT_EQ(table->index()->size(), 200u);
  EXPECT_EQ(table->index()->Lookup(7).size(), 4u);  // 200/50 duplicates
  EXPECT_EQ(table->index_column(), 0);
}

TEST(CatalogTest, IndexOnTextColumnRejected) {
  DiskArray array(1, DiskMode::kInstant);
  Catalog catalog(&array);
  Table* table = catalog.CreateTable("r1", Schema::PaperSchema()).value();
  EXPECT_EQ(table->BuildIndex(1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xprs
