// Tests of the xprs::obs observability layer: the Chrome trace_event
// exporter (golden output + JSON validity), the in-memory recorder, the
// metrics registry, and the end-to-end buffer-pool hit-rate metric checked
// against hand-counted page accesses of a tiny heap scan.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "testing/json_checker.h"

namespace xprs {
namespace {

// ---------------------------------------------------------------------------
// Chrome trace exporter.

TEST(ChromeTraceTest, GoldenExport) {
  std::vector<TraceEvent> events;
  events.push_back({"task scan_a", "sim", 'B', 0.5, 0.0, 7,
                    {{"parallelism", 3}, {"io_rate", 62.5}}});
  events.push_back({"adjust", "sched", 'i', 1.25, 0.0, 7,
                    {{"parallelism", 5}, {"paired", true}}});
  events.push_back({"task scan_a", "sim", 'E', 2.0, 0.0, 7, {}});
  events.push_back({"window", "sim", 'X', 0.0, 2.0, 0, {}});

  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"window\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":0,"
      "\"dur\":2000000,\"pid\":1,\"tid\":0},\n"
      "{\"name\":\"task scan_a\",\"cat\":\"sim\",\"ph\":\"B\",\"ts\":500000,"
      "\"pid\":1,\"tid\":7,\"args\":{\"parallelism\":3,\"io_rate\":62.5}},\n"
      "{\"name\":\"adjust\",\"cat\":\"sched\",\"ph\":\"i\",\"ts\":1250000,"
      "\"pid\":1,\"tid\":7,\"s\":\"t\","
      "\"args\":{\"parallelism\":5,\"paired\":true}},\n"
      "{\"name\":\"task scan_a\",\"cat\":\"sim\",\"ph\":\"E\",\"ts\":2000000,"
      "\"pid\":1,\"tid\":7}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";

  EXPECT_EQ(ChromeTraceJson(events), expected);
  EXPECT_TRUE(JsonChecker(ChromeTraceJson(events)).Valid());
}

TEST(ChromeTraceTest, SortIsStableByTimestamp) {
  // Two events at the same timestamp keep insertion order; an earlier
  // timestamp recorded later still sorts first.
  std::vector<TraceEvent> events;
  events.push_back({"second", "t", 'i', 5.0, 0.0, 0, {}});
  events.push_back({"third", "t", 'i', 5.0, 0.0, 0, {}});
  events.push_back({"first", "t", 'i', 1.0, 0.0, 0, {}});
  std::string json = ChromeTraceJson(events);
  size_t p1 = json.find("first");
  size_t p2 = json.find("second");
  size_t p3 = json.find("third");
  ASSERT_NE(p1, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
}

TEST(ChromeTraceTest, EscapesSpecialCharacters) {
  std::vector<TraceEvent> events;
  events.push_back({"quote\" and \\slash\n", "c\tat", 'i', 0.0, 0.0, 0,
                    {{"msg", "a\"b"}}});
  std::string json = ChromeTraceJson(events);
  EXPECT_NE(json.find("quote\\\" and \\\\slash\\n"), std::string::npos);
  EXPECT_NE(json.find("c\\tat"), std::string::npos);
  EXPECT_NE(json.find("\"a\\\"b\""), std::string::npos);
  EXPECT_TRUE(JsonChecker(json).Valid());
}

TEST(ChromeTraceTest, EmptyExportIsValidJson) {
  std::string json = ChromeTraceJson({});
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

TEST(ChromeTraceTest, WriteChromeTraceRoundTrips) {
  std::vector<TraceEvent> events;
  events.push_back({"e", "c", 'i', 1.0, 0.0, 3, {{"k", 1}}});
  std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(WriteChromeTrace(path, events).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(content, ChromeTraceJson(events));
}

TEST(ChromeTraceTest, WriteToBadPathFails) {
  EXPECT_EQ(WriteChromeTrace("/nonexistent-dir-xyz/trace.json", {}).code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Recorder.

TEST(MemoryTraceRecorderTest, RecordsInOrderAndDropsPastCapacity) {
  MemoryTraceRecorder rec(3);
  for (int i = 0; i < 5; ++i)
    rec.Record({"e" + std::to_string(i), "c", 'i', double(i), 0.0, 0, {}});
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.dropped(), 2u);
  auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "e0");
  EXPECT_EQ(events[2].name, "e2");
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(MemoryTraceRecorderTest, ConcurrentRecordsAllLand) {
  MemoryTraceRecorder rec;
  constexpr int kThreads = 4, kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i)
        rec.Record({"e", "c", 'i', double(t), 0.0, t, {}});
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(rec.dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry reg;
  Counter* c = reg.counter("a.count");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_EQ(reg.counter("a.count"), c);  // same name -> same instrument

  Gauge* g = reg.gauge("a.gauge");
  g->Set(2.5);
  g->Add(0.5);
  EXPECT_DOUBLE_EQ(g->value(), 3.0);

  Histogram* h = reg.histogram("a.hist", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 55.5);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 50.0);
  EXPECT_EQ(h->bucket_counts(), (std::vector<uint64_t>{1, 1, 1}));
}

TEST(MetricsTest, GaugeConcurrentAddIsLossless) {
  Gauge g;
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(0.5);
    });
  }
  for (auto& t : threads) t.join();
  // 0.5 sums exactly in binary floating point, so CAS losslessness is
  // checkable with equality.
  EXPECT_DOUBLE_EQ(g.value(), 0.5 * kThreads * kPerThread);
}

TEST(MetricsTest, HistogramPercentiles) {
  Histogram h({10.0, 20.0, 30.0});
  // 100 samples spread uniformly over (0, 30]: ~p50 lands mid-range.
  for (int i = 1; i <= 100; ++i) h.Observe(0.3 * i);
  // p50 rank = 50 → 17th sample of the (10,20] bucket (33 below 10.2..20).
  EXPECT_NEAR(h.Percentile(0.50), 15.0, 1.5);
  EXPECT_NEAR(h.Percentile(0.95), 28.5, 1.5);
  // Bounds clamp to the observed extremes.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.3);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 30.0);
  // Percentiles never exceed the observed max even in the overflow bucket.
  Histogram over({1.0});
  over.Observe(5.0);
  over.Observe(7.0);
  EXPECT_LE(over.Percentile(0.99), 7.0);
  EXPECT_GE(over.Percentile(0.50), 5.0);
  // Empty histogram reports 0.
  Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Percentile(0.5), 0.0);
}

TEST(MetricsTest, PercentileBoundaryRank) {
  // Regression: when q * count lands exactly on a bucket's cumulative
  // count, the boundary bucket holds the requested rank. 0.07 * 100
  // evaluates to 7.000000000000001 in binary floating point, so a naive
  // rank > seen comparison skipped the first bucket and answered from the
  // second (~2.0 instead of 1.0).
  Histogram h({1.0, 2.0, 3.0});
  for (int i = 0; i < 7; ++i) h.Observe(0.5);
  for (int i = 0; i < 93; ++i) h.Observe(2.5);
  EXPECT_DOUBLE_EQ(h.Percentile(0.07), 1.0);
  // Just past the boundary the answer moves to the next bucket.
  EXPECT_GT(h.Percentile(0.08), 2.0);

  // The same boundary with a single bucket holding everything below it.
  Histogram g({10.0});
  for (int i = 0; i < 30; ++i) g.Observe(5.0);
  for (int i = 0; i < 70; ++i) g.Observe(15.0);
  EXPECT_DOUBLE_EQ(g.Percentile(0.3), 10.0);
}

TEST(MetricsTest, DumpJsonIncludesPercentiles) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("lat", {1.0, 10.0});
  for (int i = 0; i < 10; ++i) h->Observe(0.5);
  std::string json = reg.DumpJson();
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(MetricsTest, DumpJsonIsValidAndSorted) {
  MetricsRegistry reg;
  reg.counter("z.last")->Increment();
  reg.counter("a.first")->Increment(2);
  reg.gauge("mid")->Set(1.5);
  reg.histogram("h", {1.0})->Observe(0.5);
  std::string json = reg.DumpJson();
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(MetricsTest, ObservabilityNullIsNoOp) {
  Observability obs;  // both pointers null
  EXPECT_FALSE(obs.tracing());
  obs.Emit({"e", "c", 'i', 0.0, 0.0, 0, {}});  // must not crash
}

// ---------------------------------------------------------------------------
// End-to-end: buffer-pool hit-rate metric vs hand-counted page accesses of
// a tiny heap scan.

TEST(MetricsTest, BufferPoolHitRateMatchesHandCount) {
  DiskArray array(2, DiskMode::kInstant);
  HeapFile file("tiny", Schema::PaperSchema(), &array);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        file.Append(Tuple({Value(int32_t{i}), Value(std::string(400, 'x'))}))
            .ok());
  }
  ASSERT_TRUE(file.Flush().ok());
  const uint32_t pages = file.num_pages();
  ASSERT_GT(pages, 1u);

  MetricsRegistry reg;
  BufferPool pool(&array, /*num_frames=*/pages + 4);
  pool.AttachMetrics(&reg);

  // Scan the file twice through the pool. The pool holds every page, so by
  // hand: first scan = `pages` misses, second scan = `pages` hits.
  for (int scan = 0; scan < 2; ++scan) {
    for (uint32_t p = 0; p < pages; ++p) {
      auto block = file.BlockOf(p);
      ASSERT_TRUE(block.ok());
      auto h = pool.Fetch(block.value());
      ASSERT_TRUE(h.ok());
    }
  }

  EXPECT_EQ(reg.counter("bufferpool.hits")->value(), pages);
  EXPECT_EQ(reg.counter("bufferpool.misses")->value(), pages);
  pool.PublishMetrics();
  EXPECT_DOUBLE_EQ(reg.gauge("bufferpool.hit_rate")->value(), 0.5);
  // The registry counters agree with the pool's own stats.
  EXPECT_EQ(pool.stats().hits, pages);
  EXPECT_EQ(pool.stats().misses, pages);
}

TEST(MetricsTest, DiskArrayPerDiskCountersAndInterference) {
  DiskArray array(2, DiskMode::kInstant);
  MetricsRegistry reg;
  array.AttachMetrics(&reg);
  std::vector<BlockId> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(array.AllocateBlock());

  Page page;
  // Strictly sequential sweep: no interference accrues.
  for (BlockId b : blocks) ASSERT_TRUE(array.ReadBlock(b, &page).ok());
  EXPECT_EQ(reg.counter("disk.0.reads")->value(), 4u);
  EXPECT_EQ(reg.counter("disk.1.reads")->value(), 4u);
  EXPECT_DOUBLE_EQ(array.total_stats().interference_seconds, 0.0);

  // A backward jump is a random read: interference = rand - seq service.
  ASSERT_TRUE(array.ReadBlock(blocks[0], &page).ok());
  DiskTimings timings;
  EXPECT_NEAR(array.stats(0).interference_seconds,
              timings.rand_read - timings.seq_read, 1e-12);
  array.PublishMetrics();
  EXPECT_GT(reg.gauge("disk.total_interference_seconds")->value(), 0.0);
}

// ---------------------------------------------------------------------------
// Spans.

double g_span_clock = 0.0;
double SpanTestClock() { return g_span_clock; }

// Scripted clock + dense ids for byte-stable span exports.
class SpanGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_span_clock = 0.0;
    SetSpanClockForTest(&SpanTestClock);
    ResetSpanIdsForTest();
  }
  void TearDown() override { SetSpanClockForTest(nullptr); }
};

TEST_F(SpanGoldenTest, NestedSpansExportGolden) {
  MemoryTraceRecorder rec;
  g_span_clock = 1.0;
  Span root(&rec, "query", "serve", 42);
  root.AddArg("query", "SELECT a FROM t");
  EXPECT_EQ(root.id(), 1u);

  g_span_clock = 1.25;
  Span child(&rec, "execute", "serve", 42, root.id());
  EXPECT_EQ(child.id(), 2u);
  child.EndAt(1.75);
  root.EndAt(2.0);

  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"query\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":1000000,"
      "\"dur\":1000000,\"pid\":1,\"tid\":42,"
      "\"args\":{\"query\":\"SELECT a FROM t\",\"span_id\":1}},\n"
      "{\"name\":\"execute\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":1250000,"
      "\"dur\":500000,\"pid\":1,\"tid\":42,"
      "\"args\":{\"span_id\":2,\"parent\":1}}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(ChromeTraceJson(rec.snapshot()), expected);
  EXPECT_TRUE(JsonChecker(ChromeTraceJson(rec.snapshot())).Valid());
}

TEST_F(SpanGoldenTest, QueryTextIsJsonEscapedInArgs) {
  MemoryTraceRecorder rec;
  {
    Span span(&rec, "query", "serve", 0);
    span.AddArg("query", "SELECT b FROM t WHERE b = 'x\"y'\n\tAND a < \\3");
  }
  std::string json = ChromeTraceJson(rec.snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_NE(json.find("'x\\\"y'\\n\\tAND a < \\\\3"), std::string::npos);
}

TEST_F(SpanGoldenTest, SetStartRebasesAndEndIsIdempotent) {
  MemoryTraceRecorder rec;
  g_span_clock = 5.0;
  Span span(&rec, "drain", "serve", 0);
  span.set_start(4.0);  // abut the previous phase's boundary
  EXPECT_DOUBLE_EQ(span.start_seconds(), 4.0);
  span.EndAt(6.0);
  span.End();    // idempotent: no second event
  span.End();
  auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].timestamp, 4.0);
  EXPECT_DOUBLE_EQ(events[0].duration, 2.0);
}

TEST(SpanTest, InertWithoutSinkAndDestructorCloses) {
  Span inert(nullptr, "n", "c", 0);
  EXPECT_EQ(inert.id(), 0u);
  EXPECT_FALSE(inert.active());
  inert.AddArg("k", 1);  // all no-ops
  inert.End();

  MemoryTraceRecorder rec;
  {
    ScopedSpan scoped(&rec, "scoped", "test", 3);
    EXPECT_NE(scoped.id(), 0u);
  }  // destructor ends it
  auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "scoped");
  EXPECT_EQ(events[0].phase, 'X');
}

TEST(SpanTest, MoveTransfersTheSpanAndEmitsOnce) {
  MemoryTraceRecorder rec;
  Span a(&rec, "moved", "test", 0);
  uint64_t id = a.id();
  Span b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_EQ(b.id(), id);
  b.End();
  a.End();  // moved-from: no event
  EXPECT_EQ(rec.size(), 1u);
}

}  // namespace
}  // namespace xprs
