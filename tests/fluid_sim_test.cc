// Tests for the fluid resource simulator: exact completion times, bandwidth
// throttling, seek-interference blending, arrivals, adjustment latency, and
// end-to-end runs of all three scheduling policies.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/fluid_sim.h"
#include "util/stats.h"
#include "workload/tasks.h"

namespace xprs {
namespace {

TaskProfile Task(TaskId id, double rate, double seq_time,
                 IoPattern pattern = IoPattern::kSequential,
                 double arrival = 0.0) {
  TaskProfile t;
  t.id = id;
  t.name = "t" + std::to_string(id);
  t.seq_time = seq_time;
  t.total_ios = rate * seq_time;
  t.pattern = pattern;
  t.query_id = id;
  t.arrival_time = arrival;
  return t;
}

SchedulerOptions Opts(SchedPolicy policy) {
  SchedulerOptions o;
  o.policy = policy;
  return o;
}

// Ideal fluid model: no adjustment latency, no excess-parallelism penalty.
SimOptions NoLatency() {
  SimOptions o;
  o.adjust_latency = 0.0;
  o.excess_penalty = 0.0;
  return o;
}

TEST(FluidSimTest, SingleCpuBoundTaskLinearSpeedup) {
  MachineConfig m = MachineConfig::PaperConfig();
  FluidSimulator sim(m, NoLatency());
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kIntraOnly));
  // CPU-bound: C=10 -> maxp=8 -> elapsed = 16/8 = 2s; io never throttles
  // (10*8=80 <= 240).
  SimResult r = sim.Run(&sched, {Task(1, 10.0, 16.0)});
  EXPECT_NEAR(r.elapsed, 2.0, 1e-9);
  EXPECT_NEAR(r.cpu_utilization, 1.0, 1e-9);
  EXPECT_NEAR(r.tasks.at(1).ios_done, 160.0, 1e-9);
}

TEST(FluidSimTest, SingleIoBoundTaskLimitedByBandwidth) {
  MachineConfig m = MachineConfig::PaperConfig();
  FluidSimulator sim(m, NoLatency());
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kIntraOnly));
  // C=60 seq: maxp = 240/60 = 4 -> elapsed = 20/4 = 5s, io fully used.
  SimResult r = sim.Run(&sched, {Task(1, 60.0, 20.0)});
  EXPECT_NEAR(r.elapsed, 5.0, 1e-9);
  EXPECT_NEAR(r.io_utilization, 1.0, 1e-6);
}

TEST(FluidSimTest, ThrottlingCapsProgress) {
  MachineConfig m = MachineConfig::PaperConfig();
  SimOptions so = NoLatency();
  FluidSimulator sim(m, so);
  // Force oversubscription of the disks: integer rounding can demand
  // 70*4=280 > 240... use intra-only with a random-pattern task whose maxp
  // rounds above the random bandwidth: C=45 random -> maxp=140/45=3.1 -> 3,
  // demand 135 < 140, no throttle; instead use C=50 random: maxp=2.8 -> 3,
  // demand 150 > 140 -> throttled, elapsed = T * demand/(140/50) ...
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kIntraOnly));
  SimResult r = sim.Run(&sched, {Task(1, 50.0, 14.0, IoPattern::kRandom)});
  // Granted rate = 140 io/s; total ios = 700 -> 5s (not 14/3 = 4.67).
  EXPECT_NEAR(r.elapsed, 5.0, 1e-9);
}

TEST(FluidSimTest, IoConservation) {
  MachineConfig m = MachineConfig::PaperConfig();
  FluidSimulator sim(m, NoLatency());
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kInterWithAdj));
  auto tasks = {Task(1, 60.0, 10.0, IoPattern::kRandom), Task(2, 8.0, 12.0)};
  SimResult r = sim.Run(&sched, tasks);
  for (const auto& [id, tr] : r.tasks) {
    EXPECT_NEAR(tr.ios_done, id == 1 ? 600.0 : 96.0, 1e-6);
    EXPECT_GE(tr.finish_time, tr.start_time);
    EXPECT_GE(tr.start_time, tr.arrival_time);
  }
}

TEST(FluidSimTest, PairedTasksFinishFasterThanSerial) {
  MachineConfig m = MachineConfig::PaperConfig();
  // Ideal mix: extremely io-bound random scan + extremely cpu-bound scan.
  auto tasks = {Task(1, 65.0, 20.0, IoPattern::kRandom), Task(2, 6.0, 20.0)};

  FluidSimulator sim_a(m, NoLatency());
  AdaptiveScheduler intra(m, Opts(SchedPolicy::kIntraOnly));
  double t_intra = sim_a.Run(&intra, tasks).elapsed;

  FluidSimulator sim_b(m, NoLatency());
  AdaptiveScheduler inter(m, Opts(SchedPolicy::kInterWithAdj));
  double t_inter = sim_b.Run(&inter, tasks).elapsed;

  EXPECT_LT(t_inter, t_intra);
}

TEST(FluidSimTest, ArrivalsDelayExecution) {
  MachineConfig m = MachineConfig::PaperConfig();
  FluidSimulator sim(m, NoLatency());
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kIntraOnly));
  SimResult r = sim.Run(
      &sched, {Task(1, 10.0, 8.0, IoPattern::kSequential, /*arrival=*/5.0)});
  EXPECT_NEAR(r.tasks.at(1).start_time, 5.0, 1e-9);
  EXPECT_NEAR(r.elapsed, 6.0, 1e-9);
  EXPECT_NEAR(r.tasks.at(1).response_time(), 1.0, 1e-9);
}

TEST(FluidSimTest, IdleGapBetweenArrivalsHandled) {
  MachineConfig m = MachineConfig::PaperConfig();
  FluidSimulator sim(m, NoLatency());
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kIntraOnly));
  SimResult r = sim.Run(&sched, {Task(1, 10.0, 8.0),
                                 Task(2, 10.0, 8.0, IoPattern::kSequential,
                                      /*arrival=*/100.0)});
  EXPECT_NEAR(r.elapsed, 101.0, 1e-9);
}

TEST(FluidSimTest, AdjustmentLatencyDelaysEffect) {
  MachineConfig m = MachineConfig::PaperConfig();
  SimOptions with_latency;
  with_latency.adjust_latency = 1.0;

  // One cpu-bound task paired with an io task that finishes quickly; the
  // survivor is adjusted up, but only after the protocol latency, so the
  // elapsed time is strictly larger than with zero latency.
  auto tasks = {Task(1, 65.0, 2.0, IoPattern::kRandom), Task(2, 6.0, 30.0)};

  FluidSimulator fast(m, NoLatency());
  AdaptiveScheduler s1(m, Opts(SchedPolicy::kInterWithAdj));
  double t_fast = fast.Run(&s1, tasks).elapsed;

  FluidSimulator slow(m, with_latency);
  AdaptiveScheduler s2(m, Opts(SchedPolicy::kInterWithAdj));
  double t_slow = slow.Run(&s2, tasks).elapsed;

  EXPECT_GT(t_slow, t_fast);
  EXPECT_LT(t_slow, t_fast + 2.0);  // bounded by the latency effect
}

TEST(FluidSimTest, ExcessParallelismDegradesProgress) {
  MachineConfig m = MachineConfig::PaperConfig();
  // INTER-WITHOUT-ADJ backfills the leftover processors uncapped: after
  // the cpu-bound partner of a pair finishes, a random-io task (maxp =
  // 140/55 = 2.5) is started on ~7 processors — far past its maxp. With
  // the [HONG91] penalty enabled this must cost elapsed time.
  std::vector<TaskProfile> tasks = {
      Task(1, 65.0, 6.0, IoPattern::kRandom),
      Task(2, 6.0, 6.0),
      Task(3, 55.0, 20.0, IoPattern::kRandom),
  };
  SimOptions plateau = NoLatency();
  SimOptions punished = NoLatency();
  punished.excess_penalty = 0.3;

  FluidSimulator a(m, plateau);
  AdaptiveScheduler s1(m, Opts(SchedPolicy::kInterWithoutAdj));
  double t1 = a.Run(&s1, tasks).elapsed;
  FluidSimulator b(m, punished);
  AdaptiveScheduler s2(m, Opts(SchedPolicy::kInterWithoutAdj));
  double t2 = b.Run(&s2, tasks).elapsed;
  EXPECT_GT(t2, t1 + 1e-6);
}

TEST(FluidSimTest, ProcessOverheadSlowsExecution) {
  MachineConfig m = MachineConfig::PaperConfig();
  SimOptions ideal = NoLatency();
  SimOptions lossy = NoLatency();
  lossy.process_overhead = 0.05;

  FluidSimulator a(m, ideal);
  AdaptiveScheduler s1(m, Opts(SchedPolicy::kIntraOnly));
  double t1 = a.Run(&s1, {Task(1, 5.0, 16.0)}).elapsed;

  FluidSimulator b(m, lossy);
  AdaptiveScheduler s2(m, Opts(SchedPolicy::kIntraOnly));
  double t2 = b.Run(&s2, {Task(1, 5.0, 16.0)}).elapsed;

  // x=8 with 5% overhead: speedup = 8/1.35 = 5.93 -> 16/5.93 = 2.7s.
  EXPECT_NEAR(t1, 2.0, 1e-9);
  EXPECT_NEAR(t2, 16.0 * 1.35 / 8.0, 1e-9);
}

TEST(FluidSimTest, TraceCoversWholeRun) {
  MachineConfig m = MachineConfig::PaperConfig();
  FluidSimulator sim(m, NoLatency());
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kInterWithAdj));
  SimResult r = sim.Run(&sched, {Task(1, 60.0, 10.0, IoPattern::kRandom),
                                 Task(2, 8.0, 12.0)});
  double covered = 0.0;
  for (const auto& s : sim.trace()) {
    EXPECT_GE(s.duration, 0.0);
    EXPECT_LE(s.cpus_busy, 8.0 + 1e-9);
    covered += s.duration;
  }
  EXPECT_NEAR(covered, r.elapsed, 1e-6);
}

TEST(FluidSimTest, GanttRendersEveryTask) {
  MachineConfig m = MachineConfig::PaperConfig();
  FluidSimulator sim(m, NoLatency());
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kInterWithAdj));
  SimResult r = sim.Run(&sched, {Task(1, 60.0, 10.0, IoPattern::kRandom),
                                 Task(2, 8.0, 12.0)});
  std::string gantt = RenderGantt(sim.trace(), r, 40);
  // One row per task plus the header line.
  EXPECT_NE(gantt.find("task    1"), std::string::npos);
  EXPECT_NE(gantt.find("task    2"), std::string::npos);
  EXPECT_NE(gantt.find("resp"), std::string::npos);
  // Digits appear (processors assigned) and rows are padded to width.
  EXPECT_NE(gantt.find_first_of("12345678"), std::string::npos);
}

TEST(FluidSimTest, GanttEmptyForEmptyRun) {
  MachineConfig m = MachineConfig::PaperConfig();
  FluidSimulator sim(m, NoLatency());
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kIntraOnly));
  SimResult r = sim.Run(&sched, {});
  EXPECT_TRUE(RenderGantt(sim.trace(), r).empty());
}

TEST(FluidSimTest, DeterministicAcrossRuns) {
  MachineConfig m = MachineConfig::PaperConfig();
  Rng rng(42);
  WorkloadOptions wo;
  auto tasks = MakeWorkload(WorkloadKind::kRandomMix, wo, &rng);

  double first = -1.0;
  for (int rep = 0; rep < 3; ++rep) {
    FluidSimulator sim(m, SimOptions());
    AdaptiveScheduler sched(m, Opts(SchedPolicy::kInterWithAdj));
    double t = sim.Run(&sched, tasks).elapsed;
    if (first < 0)
      first = t;
    else
      EXPECT_DOUBLE_EQ(t, first);
  }
}

// End-to-end: all three policies complete each §3 workload and WITH-ADJ is
// never slower than the others on the extreme mix.
class PolicyWorkloadTest
    : public ::testing::TestWithParam<std::tuple<WorkloadKind, SchedPolicy>> {
};

TEST_P(PolicyWorkloadTest, CompletesAllTasks) {
  auto [kind, policy] = GetParam();
  MachineConfig m = MachineConfig::PaperConfig();
  Rng rng(7);
  WorkloadOptions wo;
  auto tasks = MakeWorkload(kind, wo, &rng);

  FluidSimulator sim(m, SimOptions());
  AdaptiveScheduler sched(m, Opts(policy));
  SimResult r = sim.Run(&sched, tasks);
  EXPECT_EQ(r.tasks.size(), tasks.size());
  EXPECT_GT(r.elapsed, 0.0);
  for (const auto& [id, tr] : r.tasks) EXPECT_GE(tr.finish_time, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, PolicyWorkloadTest,
    ::testing::Combine(::testing::Values(WorkloadKind::kAllIoBound,
                                         WorkloadKind::kAllCpuBound,
                                         WorkloadKind::kExtremeMix,
                                         WorkloadKind::kRandomMix),
                       ::testing::Values(SchedPolicy::kIntraOnly,
                                         SchedPolicy::kInterWithoutAdj,
                                         SchedPolicy::kInterWithAdj)));

TEST(PolicyComparisonTest, WithAdjWinsOnExtremeMix) {
  MachineConfig m = MachineConfig::PaperConfig();
  WorkloadOptions wo;
  RunningStat gain;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto tasks = MakeWorkload(WorkloadKind::kExtremeMix, wo, &rng);

    FluidSimulator sa(m, SimOptions());
    AdaptiveScheduler intra(m, Opts(SchedPolicy::kIntraOnly));
    double t_intra = sa.Run(&intra, tasks).elapsed;

    FluidSimulator sb(m, SimOptions());
    AdaptiveScheduler with(m, Opts(SchedPolicy::kInterWithAdj));
    double t_with = sb.Run(&with, tasks).elapsed;

    gain.Add((t_intra - t_with) / t_intra);
  }
  // The paper reports up to ~25% improvement on mixed workloads.
  EXPECT_GT(gain.mean(), 0.10);
}

// Regression: a simulation whose clock overran max_sim_time used to abort
// the whole process via XPRS_CHECK. It must now return a non-OK Status
// carrying the offending task set and the last trace samples, so callers
// can diagnose the runaway instead of losing the run.
TEST(RunawayDiagnosticTest, OverrunReturnsStatusWithTraceContext) {
  MachineConfig m = MachineConfig::PaperConfig();
  SimOptions so = NoLatency();
  so.max_sim_time = 10.0;
  so.diagnostic_trace_samples = 8;
  FluidSimulator sim(m, so);
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kInterWithAdj));
  // Task 1 needs far longer than max_sim_time; tasks 2.. arrive every
  // second so the clock creeps past the limit while task 1 is still active.
  std::vector<TaskProfile> tasks = {Task(1, 5.0, 1e6)};
  for (TaskId i = 2; i <= 16; ++i)
    tasks.push_back(Task(i, 60.0, 0.5, IoPattern::kSequential,
                         /*arrival=*/static_cast<double>(i - 1)));
  SimResult r = sim.Run(&sched, tasks);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kAborted);
  EXPECT_NE(r.status.message().find("ran away"), std::string::npos)
      << r.status.ToString();
  // The offending task set names the never-finishing task.
  bool names_task1 = false;
  for (TaskId id : r.diagnostic_tasks) names_task1 |= id == 1;
  EXPECT_TRUE(names_task1) << r.status.ToString();
  // The last trace samples ride along, capped at the configured count.
  EXPECT_FALSE(r.diagnostic_trace.empty());
  EXPECT_LE(r.diagnostic_trace.size(), 8u);
}

TEST(RunawayDiagnosticTest, NormalRunHasOkStatus) {
  MachineConfig m = MachineConfig::PaperConfig();
  FluidSimulator sim(m, NoLatency());
  AdaptiveScheduler sched(m, Opts(SchedPolicy::kInterWithAdj));
  SimResult r = sim.Run(&sched, {Task(1, 60.0, 10.0, IoPattern::kRandom),
                                 Task(2, 8.0, 12.0)});
  EXPECT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_TRUE(r.diagnostic_tasks.empty());
  EXPECT_TRUE(r.diagnostic_trace.empty());
}

}  // namespace
}  // namespace xprs
