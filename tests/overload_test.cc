// Overload-control suite: the health state machine (escalation on fault
// rate / queue depth / memory pressure, monotone dwell-gated recovery),
// per-domain circuit breakers (open -> half-open -> closed, failed-probe
// re-open), poison-query quarantine with synchronous fast-reject, the
// preemptable cancellation token (hard Cancel beats Preempt), jittered
// backoff bounds, and the scheduler's emergency memory reclaim preempting
// the lowest-priority running query.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "resilience/cancellation.h"
#include "resilience/retry.h"
#include "serve/overload.h"
#include "serve/query_scheduler.h"
#include "util/rng.h"

namespace xprs {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// Small windows and short dwells so transitions are observable in a test.
OverloadOptions FastOptions() {
  OverloadOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.min_dwell_seconds = 0.01;
  options.recovery_clean_evals = 2;
  return options;
}

// ------------------------------------------------------ OverloadController

TEST(OverloadControllerTest, FaultRateEscalatesToShedding) {
  MetricsRegistry metrics;
  Observability obs;
  obs.metrics = &metrics;
  OverloadController controller(FastOptions(), obs);
  ASSERT_EQ(controller.state(), HealthState::kHealthy);

  // Below min_samples nothing fires, even at 100% failures.
  for (int i = 0; i < 3; ++i) controller.RecordOutcome(true, 0.01);
  controller.Evaluate(OverloadSignals{});
  EXPECT_EQ(controller.state(), HealthState::kHealthy);

  // Crossing min_samples with every outcome failed => fault rate 1.0,
  // escalation to shedding is immediate (no dwell on the way up).
  controller.RecordOutcome(true, 0.01);
  controller.Evaluate(OverloadSignals{});
  EXPECT_EQ(controller.state(), HealthState::kShedding);
  EXPECT_TRUE(controller.reached(HealthState::kShedding));

  // Shedding rejects default-priority work but admits priority >= floor.
  Status shed = controller.AdmissionCheck(0);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(OverloadController::IsOverloadShed(shed));
  EXPECT_FALSE(OverloadController::IsOverloadShed(
      Status::ResourceExhausted("all frames pinned")));
  EXPECT_TRUE(controller.AdmissionCheck(1).ok());
  EXPECT_EQ(controller.sheds(), 1u);
  EXPECT_EQ(metrics.counter("overload.shed")->value(), 1u);
  EXPECT_EQ(metrics.gauge("overload.state")->value(),
            static_cast<int64_t>(HealthState::kShedding));
}

TEST(OverloadControllerTest, QueueAndMemorySignalsEscalate) {
  Observability obs;
  OverloadOptions options = FastOptions();
  OverloadController controller(options, obs);

  OverloadSignals signals;
  signals.queue_frac = 0.85;  // >= degraded_queue_frac, < shedding
  controller.Evaluate(signals);
  EXPECT_EQ(controller.state(), HealthState::kDegraded);
  EXPECT_DOUBLE_EQ(controller.cpu_scale(), options.cpu_scale_degraded);
  EXPECT_DOUBLE_EQ(controller.mem_scale(), options.mem_scale_degraded);
  EXPECT_DOUBLE_EQ(controller.io_scale(), options.io_scale_degraded);
  EXPECT_DOUBLE_EQ(controller.queue_scale(), 1.0);  // only shrinks shedding

  signals.queue_frac = 1.0;
  controller.Evaluate(signals);
  EXPECT_EQ(controller.state(), HealthState::kShedding);
  EXPECT_DOUBLE_EQ(controller.cpu_scale(), options.cpu_scale_shedding);
  EXPECT_DOUBLE_EQ(controller.queue_scale(), options.queue_scale_shedding);

  // The buffer-pool probe is max-ed with the scheduler's own mem_frac.
  OverloadController probed(FastOptions(), obs);
  probed.SetMemoryProbe([] { return 1.0; });
  probed.Evaluate(OverloadSignals{});
  EXPECT_EQ(probed.state(), HealthState::kShedding);
}

TEST(OverloadControllerTest, RecoveryIsMonotoneAndDwellGated) {
  Observability obs;
  OverloadController controller(FastOptions(), obs);

  for (int i = 0; i < 8; ++i) controller.RecordOutcome(true, 0.01);
  controller.Evaluate(OverloadSignals{});
  ASSERT_EQ(controller.state(), HealthState::kShedding);

  // Clean outcomes push the failures out of the window...
  for (int i = 0; i < 8; ++i) controller.RecordOutcome(false, 0.01);
  // ...but one clean evaluation does not step down: recovery needs
  // recovery_clean_evals consecutive clean looks AND the dwell.
  controller.Evaluate(OverloadSignals{});
  EXPECT_EQ(controller.state(), HealthState::kShedding);

  // Keep evaluating past the dwell; the controller must pass through
  // degraded (one level per step), never jump shedding -> healthy.
  for (int i = 0; i < 100 && controller.state() != HealthState::kHealthy;
       ++i) {
    SleepMs(5);
    controller.Evaluate(OverloadSignals{});
  }
  ASSERT_EQ(controller.state(), HealthState::kHealthy);

  std::vector<OverloadTransition> transitions = controller.transitions();
  ASSERT_GE(transitions.size(), 3u);
  for (const OverloadTransition& t : transitions) {
    int delta = static_cast<int>(t.to) - static_cast<int>(t.from);
    EXPECT_LE(delta, 2);   // escalation may jump straight to shedding
    EXPECT_GE(delta, -1);  // recovery steps down exactly one level
  }
  EXPECT_EQ(static_cast<int>(transitions.back().to),
            static_cast<int>(HealthState::kHealthy));
}

TEST(OverloadControllerTest, DisabledControllerNeverLeavesHealthy) {
  Observability obs;
  OverloadOptions options = FastOptions();
  options.enabled = false;
  OverloadController controller(options, obs);
  for (int i = 0; i < 8; ++i) controller.RecordOutcome(true, 10.0);
  OverloadSignals signals;
  signals.queue_frac = 1.0;
  signals.mem_frac = 1.0;
  controller.Evaluate(signals);
  EXPECT_EQ(controller.state(), HealthState::kHealthy);
  EXPECT_TRUE(controller.AdmissionCheck(-100).ok());
  EXPECT_DOUBLE_EQ(controller.cpu_scale(), 1.0);
  EXPECT_DOUBLE_EQ(controller.queue_scale(), 1.0);
}

// ---------------------------------------------------------- CircuitBreaker

CircuitBreakerOptions FastBreaker() {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  options.open_seconds = 0.02;
  options.half_open_successes = 1;
  return options;
}

TEST(CircuitBreakerTest, OpensFastFailsThenProbeCloses) {
  MetricsRegistry metrics;
  Observability obs;
  obs.metrics = &metrics;
  CircuitBreaker breaker("storage_read", FastBreaker(), obs);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow().ok());

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // below threshold
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1u);

  // While open every attempt fast-fails without touching the domain.
  Status gate = breaker.Allow();
  ASSERT_FALSE(gate.ok());
  EXPECT_TRUE(CircuitBreaker::IsBreakerOpen(gate));
  EXPECT_FALSE(CircuitBreaker::IsBreakerOpen(
      Status::ResourceExhausted("admission queue full")));
  EXPECT_GE(breaker.fast_fails(), 1u);
  EXPECT_EQ(metrics.counter("overload.breaker.storage_read.opened")->value(),
            1u);

  // After the cooldown one half-open probe goes through; its success
  // closes the breaker.
  SleepMs(30);
  EXPECT_TRUE(breaker.Allow().ok());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow().ok());
}

TEST(CircuitBreakerTest, FailedProbeReopens) {
  Observability obs;
  CircuitBreaker breaker("spill_io", FastBreaker(), obs);
  breaker.RecordFailure();
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  SleepMs(30);
  ASSERT_TRUE(breaker.Allow().ok());  // half-open probe
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2u);
  EXPECT_FALSE(breaker.Allow().ok());
}

// --------------------------------------------------------------- PoisonLog

TEST(PoisonLogTest, QuarantinesAfterThresholdAndFastRejects) {
  MetricsRegistry metrics;
  Observability obs;
  obs.metrics = &metrics;
  PoisonLog log(2, obs);
  const std::string sql = "SELECT * FROM cursed";
  GrantSnapshot grant;
  grant.parallelism = 4;
  grant.memory_pages = 64.0;

  EXPECT_FALSE(log.RecordFailure(sql, 7, grant, Status::IoError("boom"),
                                 3, /*seed=*/42));
  EXPECT_FALSE(log.IsQuarantined(sql));
  EXPECT_TRUE(log.RejectIfQuarantined(sql).ok());

  EXPECT_TRUE(log.RecordFailure(sql, 7, grant, Status::IoError("boom"),
                                3, /*seed=*/42));
  EXPECT_TRUE(log.IsQuarantined(sql));
  EXPECT_EQ(log.quarantined_count(), 1u);

  Status reject = log.RejectIfQuarantined(sql);
  ASSERT_FALSE(reject.ok());
  EXPECT_EQ(reject.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(PoisonLog::IsPoisonReject(reject));
  EXPECT_FALSE(PoisonLog::IsPoisonReject(Status::FailedPrecondition("shut")));
  EXPECT_EQ(metrics.counter("overload.poison.quarantined")->value(), 1u);
  EXPECT_EQ(metrics.counter("overload.poison.rejected")->value(), 1u);

  // A different statement is unaffected.
  EXPECT_TRUE(log.RejectIfQuarantined("SELECT 1").ok());

  ASSERT_EQ(log.entries().size(), 1u);
  PoisonEntry entry = log.entries()[0];
  EXPECT_EQ(entry.query, sql);
  EXPECT_EQ(entry.failures, 2);
  EXPECT_EQ(entry.seed, 42u);
  EXPECT_TRUE(entry.quarantined);
  EXPECT_EQ(entry.rejected, 1u);
  // The replay record carries the grant and the seed.
  std::string json = entry.ToJson();
  EXPECT_NE(json.find("cursed"), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(log.DumpJsonLines().find("cursed"), std::string::npos);
}

TEST(PoisonLogTest, DisabledLogRecordsNothing) {
  PoisonLog log(0);
  EXPECT_FALSE(log.enabled());
  for (int i = 0; i < 5; ++i)
    log.RecordFailure("SELECT 1", 1, GrantSnapshot{}, Status::IoError("x"), 1);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.RejectIfQuarantined("SELECT 1").ok());
}

// ------------------------------------------------------- CancellationToken

TEST(CancellationTokenTest, PreemptLatchesAndResetRearms) {
  CancellationToken token;
  ASSERT_TRUE(token.Check().ok());
  EXPECT_TRUE(token.Preempt());
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  // A second Preempt on a latched token is a no-op.
  EXPECT_FALSE(token.Preempt());

  EXPECT_TRUE(token.ResetPreempted());
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
  // Reset on a live token does nothing.
  EXPECT_FALSE(token.ResetPreempted());
}

TEST(CancellationTokenTest, HardCancelBeatsPreempt) {
  // Cancel after Preempt: the reset must fail and the cancel stand.
  CancellationToken token;
  ASSERT_TRUE(token.Preempt());
  token.Cancel("user said stop");
  EXPECT_FALSE(token.ResetPreempted());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  EXPECT_NE(token.Check().message().find("user said stop"),
            std::string::npos);

  // Cancel before Preempt: the preemption is refused outright.
  CancellationToken cancelled_first;
  cancelled_first.Cancel();
  EXPECT_FALSE(cancelled_first.Preempt());
  EXPECT_FALSE(cancelled_first.ResetPreempted());
  EXPECT_EQ(cancelled_first.Check().code(), StatusCode::kCancelled);
}

// --------------------------------------------------------- JitteredBackoff

TEST(JitteredBackoffTest, StaysWithinDecorrelationBounds) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 8;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 50;
  Rng rng(123);
  for (int failures = 1; failures <= 6; ++failures) {
    int base = policy.BackoffMs(failures);
    int half = std::max(1, base / 2);
    for (int draw = 0; draw < 100; ++draw) {
      int ms = JitteredBackoffMs(policy, failures, &rng);
      EXPECT_GE(ms, half) << "failures=" << failures;
      EXPECT_LE(ms, base + half) << "failures=" << failures;
    }
  }
}

// ------------------------------------------------- scheduler memory reclaim

TEST(QuerySchedulerTest, PreemptsLowestPriorityVictimForMemory) {
  MetricsRegistry metrics;
  ServeOptions options;
  options.max_concurrent = 2;
  options.memory_pages_budget = 100.0;
  options.degrade_wait_seconds = 0.01;
  options.obs.metrics = &metrics;
  QueryScheduler scheduler(options);

  // Victim: low priority, holds 80 of the 100 pages, blocks until its
  // token fires; on the post-preemption re-run it completes immediately.
  CancellationToken victim_token;
  std::atomic<int> victim_runs{0};
  ServeRequest victim;
  victim.estimate.seq_time = 1.0;
  victim.estimate.total_ios = 10.0;
  victim.estimate.memory_pages = 80.0;
  victim.session_id = 1;
  victim.priority = 0;
  victim.cancel = &victim_token;
  victim.job = [&](const ExecGrant& grant) -> StatusOr<SqlResult> {
    if (victim_runs.fetch_add(1) == 0) {
      // First run: spin at a cancellation point until preempted (bounded
      // so a missed preemption fails the test instead of hanging it).
      for (int i = 0; i < 2000; ++i) {
        Status st = grant.cancel->Check();
        if (!st.ok()) return st;
        SleepMs(1);
      }
      return Status::Internal("victim was never preempted");
    }
    return SqlResult();
  };
  auto victim_ticket = scheduler.Submit(std::move(victim));
  ASSERT_TRUE(victim_ticket.ok());

  // Wait until the victim is actually running and holding its pages.
  for (int i = 0; i < 2000 && victim_runs.load() == 0; ++i) SleepMs(1);
  ASSERT_EQ(victim_runs.load(), 1);

  // Contender: higher priority, also needs 80 pages — cannot fit until
  // the victim's pages come back. After degrade_wait_seconds the
  // scheduler must reclaim by preempting the victim, not degrade the
  // contender to spill.
  std::atomic<bool> contender_degraded{false};
  ServeRequest contender;
  contender.estimate.seq_time = 1.0;
  contender.estimate.total_ios = 10.0;
  contender.estimate.memory_pages = 80.0;
  contender.session_id = 2;
  contender.priority = 5;
  contender.job = [&](const ExecGrant& grant) -> StatusOr<SqlResult> {
    contender_degraded.store(grant.degrade_to_spill);
    return SqlResult();
  };
  auto contender_ticket = scheduler.Submit(std::move(contender));
  ASSERT_TRUE(contender_ticket.ok());

  // Contender runs at full memory; victim is requeued and completes on
  // its re-run once the pages free up.
  StatusOr<SqlResult> contender_result = contender_ticket->Wait();
  ASSERT_TRUE(contender_result.ok()) << contender_result.status().ToString();
  EXPECT_FALSE(contender_degraded.load())
      << "contender was degraded to spill instead of reclaiming memory";
  StatusOr<SqlResult> victim_result = victim_ticket->Wait();
  ASSERT_TRUE(victim_result.ok()) << victim_result.status().ToString();
  EXPECT_EQ(victim_runs.load(), 2) << "victim must re-run after preemption";

  EXPECT_EQ(scheduler.preemptions(), 1u);
  EXPECT_EQ(metrics.counter("serve.preempted")->value(), 1u);
  // The reclaim invariant: all pages returned, nothing left running.
  EXPECT_TRUE(scheduler.Drain().ok());
  EXPECT_EQ(scheduler.NumRunning(), 0u);
  EXPECT_EQ(scheduler.NumQueued(), 0u);
}

}  // namespace
}  // namespace xprs
