file(REMOVE_RECURSE
  "CMakeFiles/throttle_test.dir/throttle_test.cc.o"
  "CMakeFiles/throttle_test.dir/throttle_test.cc.o.d"
  "throttle_test"
  "throttle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throttle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
