file(REMOVE_RECURSE
  "CMakeFiles/relations_test.dir/relations_test.cc.o"
  "CMakeFiles/relations_test.dir/relations_test.cc.o.d"
  "relations_test"
  "relations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
