# Empty dependencies file for scheduler_extra_test.
# This may be replaced when dependencies are built.
