file(REMOVE_RECURSE
  "CMakeFiles/scheduler_extra_test.dir/scheduler_extra_test.cc.o"
  "CMakeFiles/scheduler_extra_test.dir/scheduler_extra_test.cc.o.d"
  "scheduler_extra_test"
  "scheduler_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
