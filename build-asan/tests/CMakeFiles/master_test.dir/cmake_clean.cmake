file(REMOVE_RECURSE
  "CMakeFiles/master_test.dir/master_test.cc.o"
  "CMakeFiles/master_test.dir/master_test.cc.o.d"
  "master_test"
  "master_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/master_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
