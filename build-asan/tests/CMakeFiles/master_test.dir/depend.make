# Empty dependencies file for master_test.
# This may be replaced when dependencies are built.
