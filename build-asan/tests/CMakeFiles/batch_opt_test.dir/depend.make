# Empty dependencies file for batch_opt_test.
# This may be replaced when dependencies are built.
