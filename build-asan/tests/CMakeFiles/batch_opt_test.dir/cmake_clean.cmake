file(REMOVE_RECURSE
  "CMakeFiles/batch_opt_test.dir/batch_opt_test.cc.o"
  "CMakeFiles/batch_opt_test.dir/batch_opt_test.cc.o.d"
  "batch_opt_test"
  "batch_opt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
