file(REMOVE_RECURSE
  "libxprs_sim.a"
)
