# Empty dependencies file for xprs_sim.
# This may be replaced when dependencies are built.
