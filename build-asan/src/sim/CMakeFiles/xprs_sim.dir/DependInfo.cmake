
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fluid_sim.cc" "src/sim/CMakeFiles/xprs_sim.dir/fluid_sim.cc.o" "gcc" "src/sim/CMakeFiles/xprs_sim.dir/fluid_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sched/CMakeFiles/xprs_sched.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/xprs_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/xprs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
