file(REMOVE_RECURSE
  "CMakeFiles/xprs_sim.dir/fluid_sim.cc.o"
  "CMakeFiles/xprs_sim.dir/fluid_sim.cc.o.d"
  "libxprs_sim.a"
  "libxprs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
