file(REMOVE_RECURSE
  "CMakeFiles/xprs_workload.dir/relations.cc.o"
  "CMakeFiles/xprs_workload.dir/relations.cc.o.d"
  "CMakeFiles/xprs_workload.dir/tasks.cc.o"
  "CMakeFiles/xprs_workload.dir/tasks.cc.o.d"
  "libxprs_workload.a"
  "libxprs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
