# Empty dependencies file for xprs_workload.
# This may be replaced when dependencies are built.
