file(REMOVE_RECURSE
  "libxprs_workload.a"
)
