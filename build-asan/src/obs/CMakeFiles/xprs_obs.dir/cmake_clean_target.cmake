file(REMOVE_RECURSE
  "libxprs_obs.a"
)
