# Empty dependencies file for xprs_obs.
# This may be replaced when dependencies are built.
