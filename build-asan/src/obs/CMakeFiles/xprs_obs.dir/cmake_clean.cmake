file(REMOVE_RECURSE
  "CMakeFiles/xprs_obs.dir/metrics.cc.o"
  "CMakeFiles/xprs_obs.dir/metrics.cc.o.d"
  "CMakeFiles/xprs_obs.dir/trace.cc.o"
  "CMakeFiles/xprs_obs.dir/trace.cc.o.d"
  "libxprs_obs.a"
  "libxprs_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
