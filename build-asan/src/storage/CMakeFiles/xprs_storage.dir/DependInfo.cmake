
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/btree.cc" "src/storage/CMakeFiles/xprs_storage.dir/btree.cc.o" "gcc" "src/storage/CMakeFiles/xprs_storage.dir/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/xprs_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/xprs_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/xprs_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/xprs_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/disk_array.cc" "src/storage/CMakeFiles/xprs_storage.dir/disk_array.cc.o" "gcc" "src/storage/CMakeFiles/xprs_storage.dir/disk_array.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/storage/CMakeFiles/xprs_storage.dir/heap_file.cc.o" "gcc" "src/storage/CMakeFiles/xprs_storage.dir/heap_file.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/xprs_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/xprs_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/tuple.cc" "src/storage/CMakeFiles/xprs_storage.dir/tuple.cc.o" "gcc" "src/storage/CMakeFiles/xprs_storage.dir/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/obs/CMakeFiles/xprs_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/xprs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
