file(REMOVE_RECURSE
  "libxprs_storage.a"
)
