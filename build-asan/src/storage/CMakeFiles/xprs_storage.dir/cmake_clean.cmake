file(REMOVE_RECURSE
  "CMakeFiles/xprs_storage.dir/btree.cc.o"
  "CMakeFiles/xprs_storage.dir/btree.cc.o.d"
  "CMakeFiles/xprs_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/xprs_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/xprs_storage.dir/catalog.cc.o"
  "CMakeFiles/xprs_storage.dir/catalog.cc.o.d"
  "CMakeFiles/xprs_storage.dir/disk_array.cc.o"
  "CMakeFiles/xprs_storage.dir/disk_array.cc.o.d"
  "CMakeFiles/xprs_storage.dir/heap_file.cc.o"
  "CMakeFiles/xprs_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/xprs_storage.dir/page.cc.o"
  "CMakeFiles/xprs_storage.dir/page.cc.o.d"
  "CMakeFiles/xprs_storage.dir/tuple.cc.o"
  "CMakeFiles/xprs_storage.dir/tuple.cc.o.d"
  "libxprs_storage.a"
  "libxprs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
