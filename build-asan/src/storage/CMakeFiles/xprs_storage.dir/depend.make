# Empty dependencies file for xprs_storage.
# This may be replaced when dependencies are built.
