file(REMOVE_RECURSE
  "libxprs_sql.a"
)
