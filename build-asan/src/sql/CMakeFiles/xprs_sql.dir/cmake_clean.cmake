file(REMOVE_RECURSE
  "CMakeFiles/xprs_sql.dir/engine.cc.o"
  "CMakeFiles/xprs_sql.dir/engine.cc.o.d"
  "CMakeFiles/xprs_sql.dir/lexer.cc.o"
  "CMakeFiles/xprs_sql.dir/lexer.cc.o.d"
  "CMakeFiles/xprs_sql.dir/parser.cc.o"
  "CMakeFiles/xprs_sql.dir/parser.cc.o.d"
  "libxprs_sql.a"
  "libxprs_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
