# Empty dependencies file for xprs_sql.
# This may be replaced when dependencies are built.
