# Empty dependencies file for xprs_sched.
# This may be replaced when dependencies are built.
