file(REMOVE_RECURSE
  "libxprs_sched.a"
)
