file(REMOVE_RECURSE
  "CMakeFiles/xprs_sched.dir/balance.cc.o"
  "CMakeFiles/xprs_sched.dir/balance.cc.o.d"
  "CMakeFiles/xprs_sched.dir/cost.cc.o"
  "CMakeFiles/xprs_sched.dir/cost.cc.o.d"
  "CMakeFiles/xprs_sched.dir/machine.cc.o"
  "CMakeFiles/xprs_sched.dir/machine.cc.o.d"
  "CMakeFiles/xprs_sched.dir/scheduler.cc.o"
  "CMakeFiles/xprs_sched.dir/scheduler.cc.o.d"
  "CMakeFiles/xprs_sched.dir/task.cc.o"
  "CMakeFiles/xprs_sched.dir/task.cc.o.d"
  "libxprs_sched.a"
  "libxprs_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
