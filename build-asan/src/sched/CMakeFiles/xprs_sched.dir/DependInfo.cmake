
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/balance.cc" "src/sched/CMakeFiles/xprs_sched.dir/balance.cc.o" "gcc" "src/sched/CMakeFiles/xprs_sched.dir/balance.cc.o.d"
  "/root/repo/src/sched/cost.cc" "src/sched/CMakeFiles/xprs_sched.dir/cost.cc.o" "gcc" "src/sched/CMakeFiles/xprs_sched.dir/cost.cc.o.d"
  "/root/repo/src/sched/machine.cc" "src/sched/CMakeFiles/xprs_sched.dir/machine.cc.o" "gcc" "src/sched/CMakeFiles/xprs_sched.dir/machine.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/sched/CMakeFiles/xprs_sched.dir/scheduler.cc.o" "gcc" "src/sched/CMakeFiles/xprs_sched.dir/scheduler.cc.o.d"
  "/root/repo/src/sched/task.cc" "src/sched/CMakeFiles/xprs_sched.dir/task.cc.o" "gcc" "src/sched/CMakeFiles/xprs_sched.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/obs/CMakeFiles/xprs_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/xprs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
