file(REMOVE_RECURSE
  "libxprs_exec.a"
)
