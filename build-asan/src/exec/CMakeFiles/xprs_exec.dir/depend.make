# Empty dependencies file for xprs_exec.
# This may be replaced when dependencies are built.
