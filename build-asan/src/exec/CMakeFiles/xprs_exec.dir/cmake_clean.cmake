file(REMOVE_RECURSE
  "CMakeFiles/xprs_exec.dir/executor.cc.o"
  "CMakeFiles/xprs_exec.dir/executor.cc.o.d"
  "CMakeFiles/xprs_exec.dir/expr.cc.o"
  "CMakeFiles/xprs_exec.dir/expr.cc.o.d"
  "CMakeFiles/xprs_exec.dir/fragment.cc.o"
  "CMakeFiles/xprs_exec.dir/fragment.cc.o.d"
  "CMakeFiles/xprs_exec.dir/operators.cc.o"
  "CMakeFiles/xprs_exec.dir/operators.cc.o.d"
  "CMakeFiles/xprs_exec.dir/plan.cc.o"
  "CMakeFiles/xprs_exec.dir/plan.cc.o.d"
  "CMakeFiles/xprs_exec.dir/spill_ops.cc.o"
  "CMakeFiles/xprs_exec.dir/spill_ops.cc.o.d"
  "libxprs_exec.a"
  "libxprs_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
