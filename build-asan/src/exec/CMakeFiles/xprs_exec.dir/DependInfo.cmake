
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/xprs_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/xprs_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/exec/CMakeFiles/xprs_exec.dir/expr.cc.o" "gcc" "src/exec/CMakeFiles/xprs_exec.dir/expr.cc.o.d"
  "/root/repo/src/exec/fragment.cc" "src/exec/CMakeFiles/xprs_exec.dir/fragment.cc.o" "gcc" "src/exec/CMakeFiles/xprs_exec.dir/fragment.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/exec/CMakeFiles/xprs_exec.dir/operators.cc.o" "gcc" "src/exec/CMakeFiles/xprs_exec.dir/operators.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/exec/CMakeFiles/xprs_exec.dir/plan.cc.o" "gcc" "src/exec/CMakeFiles/xprs_exec.dir/plan.cc.o.d"
  "/root/repo/src/exec/spill_ops.cc" "src/exec/CMakeFiles/xprs_exec.dir/spill_ops.cc.o" "gcc" "src/exec/CMakeFiles/xprs_exec.dir/spill_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/storage/CMakeFiles/xprs_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/xprs_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/xprs_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
