# Empty dependencies file for xprs_parallel.
# This may be replaced when dependencies are built.
