
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/driven_ops.cc" "src/parallel/CMakeFiles/xprs_parallel.dir/driven_ops.cc.o" "gcc" "src/parallel/CMakeFiles/xprs_parallel.dir/driven_ops.cc.o.d"
  "/root/repo/src/parallel/fragment_run.cc" "src/parallel/CMakeFiles/xprs_parallel.dir/fragment_run.cc.o" "gcc" "src/parallel/CMakeFiles/xprs_parallel.dir/fragment_run.cc.o.d"
  "/root/repo/src/parallel/master.cc" "src/parallel/CMakeFiles/xprs_parallel.dir/master.cc.o" "gcc" "src/parallel/CMakeFiles/xprs_parallel.dir/master.cc.o.d"
  "/root/repo/src/parallel/page_partition.cc" "src/parallel/CMakeFiles/xprs_parallel.dir/page_partition.cc.o" "gcc" "src/parallel/CMakeFiles/xprs_parallel.dir/page_partition.cc.o.d"
  "/root/repo/src/parallel/range_partition.cc" "src/parallel/CMakeFiles/xprs_parallel.dir/range_partition.cc.o" "gcc" "src/parallel/CMakeFiles/xprs_parallel.dir/range_partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/opt/CMakeFiles/xprs_opt.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sched/CMakeFiles/xprs_sched.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/exec/CMakeFiles/xprs_exec.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/storage/CMakeFiles/xprs_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/xprs_obs.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/xprs_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/xprs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
