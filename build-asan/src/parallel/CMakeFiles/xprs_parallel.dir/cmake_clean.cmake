file(REMOVE_RECURSE
  "CMakeFiles/xprs_parallel.dir/driven_ops.cc.o"
  "CMakeFiles/xprs_parallel.dir/driven_ops.cc.o.d"
  "CMakeFiles/xprs_parallel.dir/fragment_run.cc.o"
  "CMakeFiles/xprs_parallel.dir/fragment_run.cc.o.d"
  "CMakeFiles/xprs_parallel.dir/master.cc.o"
  "CMakeFiles/xprs_parallel.dir/master.cc.o.d"
  "CMakeFiles/xprs_parallel.dir/page_partition.cc.o"
  "CMakeFiles/xprs_parallel.dir/page_partition.cc.o.d"
  "CMakeFiles/xprs_parallel.dir/range_partition.cc.o"
  "CMakeFiles/xprs_parallel.dir/range_partition.cc.o.d"
  "libxprs_parallel.a"
  "libxprs_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
