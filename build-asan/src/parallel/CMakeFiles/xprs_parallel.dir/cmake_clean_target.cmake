file(REMOVE_RECURSE
  "libxprs_parallel.a"
)
