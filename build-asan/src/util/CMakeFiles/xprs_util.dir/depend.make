# Empty dependencies file for xprs_util.
# This may be replaced when dependencies are built.
