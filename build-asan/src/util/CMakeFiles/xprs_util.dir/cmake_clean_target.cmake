file(REMOVE_RECURSE
  "libxprs_util.a"
)
