file(REMOVE_RECURSE
  "CMakeFiles/xprs_util.dir/logging.cc.o"
  "CMakeFiles/xprs_util.dir/logging.cc.o.d"
  "CMakeFiles/xprs_util.dir/rng.cc.o"
  "CMakeFiles/xprs_util.dir/rng.cc.o.d"
  "CMakeFiles/xprs_util.dir/stats.cc.o"
  "CMakeFiles/xprs_util.dir/stats.cc.o.d"
  "CMakeFiles/xprs_util.dir/status.cc.o"
  "CMakeFiles/xprs_util.dir/status.cc.o.d"
  "CMakeFiles/xprs_util.dir/str.cc.o"
  "CMakeFiles/xprs_util.dir/str.cc.o.d"
  "libxprs_util.a"
  "libxprs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
