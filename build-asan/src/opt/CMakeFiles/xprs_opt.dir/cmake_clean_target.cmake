file(REMOVE_RECURSE
  "libxprs_opt.a"
)
