# Empty dependencies file for xprs_opt.
# This may be replaced when dependencies are built.
