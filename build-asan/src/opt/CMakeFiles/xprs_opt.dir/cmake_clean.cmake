file(REMOVE_RECURSE
  "CMakeFiles/xprs_opt.dir/cost_model.cc.o"
  "CMakeFiles/xprs_opt.dir/cost_model.cc.o.d"
  "CMakeFiles/xprs_opt.dir/join_enum.cc.o"
  "CMakeFiles/xprs_opt.dir/join_enum.cc.o.d"
  "CMakeFiles/xprs_opt.dir/two_phase.cc.o"
  "CMakeFiles/xprs_opt.dir/two_phase.cc.o.d"
  "libxprs_opt.a"
  "libxprs_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
