file(REMOVE_RECURSE
  "../bench/bench_adjustment"
  "../bench/bench_adjustment.pdb"
  "CMakeFiles/bench_adjustment.dir/bench_adjustment.cc.o"
  "CMakeFiles/bench_adjustment.dir/bench_adjustment.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adjustment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
