file(REMOVE_RECURSE
  "../bench/bench_balance_point"
  "../bench/bench_balance_point.pdb"
  "CMakeFiles/bench_balance_point.dir/bench_balance_point.cc.o"
  "CMakeFiles/bench_balance_point.dir/bench_balance_point.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_balance_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
