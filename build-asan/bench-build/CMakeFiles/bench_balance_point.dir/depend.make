# Empty dependencies file for bench_balance_point.
# This may be replaced when dependencies are built.
