file(REMOVE_RECURSE
  "../bench/bench_queue"
  "../bench/bench_queue.pdb"
  "CMakeFiles/bench_queue.dir/bench_queue.cc.o"
  "CMakeFiles/bench_queue.dir/bench_queue.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
