file(REMOVE_RECURSE
  "../bench/bench_io_rates"
  "../bench/bench_io_rates.pdb"
  "CMakeFiles/bench_io_rates.dir/bench_io_rates.cc.o"
  "CMakeFiles/bench_io_rates.dir/bench_io_rates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
