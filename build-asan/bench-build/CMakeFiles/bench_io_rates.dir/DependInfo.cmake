
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_io_rates.cc" "bench-build/CMakeFiles/bench_io_rates.dir/bench_io_rates.cc.o" "gcc" "bench-build/CMakeFiles/bench_io_rates.dir/bench_io_rates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/workload/CMakeFiles/xprs_workload.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/opt/CMakeFiles/xprs_opt.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/parallel/CMakeFiles/xprs_parallel.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/xprs_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sched/CMakeFiles/xprs_sched.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/exec/CMakeFiles/xprs_exec.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/storage/CMakeFiles/xprs_storage.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/util/CMakeFiles/xprs_util.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/obs/CMakeFiles/xprs_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
