# Empty dependencies file for bench_io_rates.
# This may be replaced when dependencies are built.
