file(REMOVE_RECURSE
  "../bench/bench_optimizer"
  "../bench/bench_optimizer.pdb"
  "CMakeFiles/bench_optimizer.dir/bench_optimizer.cc.o"
  "CMakeFiles/bench_optimizer.dir/bench_optimizer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
