file(REMOVE_RECURSE
  "../bench/bench_speedup"
  "../bench/bench_speedup.pdb"
  "CMakeFiles/bench_speedup.dir/bench_speedup.cc.o"
  "CMakeFiles/bench_speedup.dir/bench_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
