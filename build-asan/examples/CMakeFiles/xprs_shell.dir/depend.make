# Empty dependencies file for xprs_shell.
# This may be replaced when dependencies are built.
