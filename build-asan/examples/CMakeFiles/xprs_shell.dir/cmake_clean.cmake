file(REMOVE_RECURSE
  "CMakeFiles/xprs_shell.dir/xprs_shell.cc.o"
  "CMakeFiles/xprs_shell.dir/xprs_shell.cc.o.d"
  "xprs_shell"
  "xprs_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xprs_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
