# Empty dependencies file for bushy_join.
# This may be replaced when dependencies are built.
