file(REMOVE_RECURSE
  "CMakeFiles/bushy_join.dir/bushy_join.cc.o"
  "CMakeFiles/bushy_join.dir/bushy_join.cc.o.d"
  "bushy_join"
  "bushy_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bushy_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
