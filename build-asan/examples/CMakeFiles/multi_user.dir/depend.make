# Empty dependencies file for multi_user.
# This may be replaced when dependencies are built.
