file(REMOVE_RECURSE
  "CMakeFiles/multi_user.dir/multi_user.cc.o"
  "CMakeFiles/multi_user.dir/multi_user.cc.o.d"
  "multi_user"
  "multi_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
