file(REMOVE_RECURSE
  "CMakeFiles/sql_quickstart.dir/sql_quickstart.cc.o"
  "CMakeFiles/sql_quickstart.dir/sql_quickstart.cc.o.d"
  "sql_quickstart"
  "sql_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
