# Empty dependencies file for sql_quickstart.
# This may be replaced when dependencies are built.
