# Empty compiler generated dependencies file for xprs_storage.
# This may be replaced when dependencies are built.
