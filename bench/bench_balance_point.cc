// Regenerates Figures 3 and 4 (§2.2-2.3) as data series:
//   Figure 3 — task lines IO_i(x) = C_i * x against the (N, B) rectangle,
//     the classification of each task, and its maximum parallelism;
//   Figure 4 — the IO-CPU balance point for IO-bound x CPU-bound pairs,
//     with and without the effective-bandwidth (seek interference) model;
// plus the §2.3 bandwidth-degradation curve between two sequential
// streams.

#include <cstdio>

#include "bench_obs.h"
#include "sched/balance.h"
#include "sched/cost.h"
#include "util/stats.h"
#include "util/str.h"

namespace xprs {
namespace {

TaskProfile Task(TaskId id, double rate, IoPattern pattern) {
  TaskProfile t;
  t.id = id;
  t.seq_time = 10.0;
  t.total_ios = rate * 10.0;
  t.pattern = pattern;
  return t;
}

void Run(BenchObs* bench_obs) {
  MachineConfig m = MachineConfig::PaperConfig();
  std::printf("Figures 3 & 4: task classification and IO-CPU balance points\n");
  std::printf("%s\n\n", m.ToString().c_str());

  // ---- Figure 3: task lines against the (N, B) rectangle.
  std::printf("Figure 3 — io rate lines IO_i(x) = C_i*x, rectangle N=%d, "
              "B=%.0f, diagonal slope B/N=%.0f:\n",
              m.num_cpus, m.nominal_bandwidth(), m.io_cpu_threshold());
  TextTable fig3({"C_i (io/s)", "pattern", "class", "maxp", "IO at maxp"});
  const double rates[] = {5, 10, 20, 30, 35, 45, 60, 70};
  for (double rate : rates) {
    for (IoPattern pattern : {IoPattern::kSequential, IoPattern::kRandom}) {
      if (pattern == IoPattern::kRandom && rate < 30) continue;
      TaskProfile t = Task(0, rate, pattern);
      double maxp = MaxParallelism(t, m);
      fig3.AddRow({StrFormat("%.0f", rate), IoPatternName(pattern),
                   IsIoBound(t, m) ? "IO-bound" : "CPU-bound",
                   StrFormat("%.2f", maxp),
                   StrFormat("%.0f", rate * maxp)});
    }
  }
  std::printf("%s\n", fig3.ToString().c_str());

  // ---- §2.3 effective bandwidth between two sequential streams.
  std::printf("Section 2.3 — effective bandwidth of two concurrent "
              "sequential streams (u, v io/s demanded):\n");
  TextTable blend({"split u:v", "ratio", "B_eff (io/s)"});
  for (double u : {240.0, 200.0, 160.0, 120.0, 80.0, 40.0, 10.0}) {
    double v = 240.0 - u;
    std::vector<IoStream> streams = {{u, IoPattern::kSequential, 3.0},
                                     {v, IoPattern::kSequential, 3.0}};
    double ratio = (u < v ? u / v : (u > 0 ? v / u : 0.0));
    blend.AddRow({StrFormat("%.0f:%.0f", u, v), StrFormat("%.2f", ratio),
                  StrFormat("%.0f", EffectiveBandwidth(m, streams))});
  }
  std::printf("%s\n", blend.ToString().c_str());

  // ---- Figure 4: balance points across the rate grid.
  std::printf("Figure 4 — IO-CPU balance points (x_i + x_j = N, "
              "C_i x_i + C_j x_j = B_eff):\n");
  TextTable fig4({"C_io", "C_cpu", "pattern", "x_io", "x_cpu", "B_eff",
                  "T_inter/T_intra"});
  for (double cio : {35.0, 45.0, 60.0, 70.0}) {
    for (double ccpu : {5.0, 10.0, 20.0, 29.0}) {
      for (IoPattern pio : {IoPattern::kSequential, IoPattern::kRandom}) {
        TaskProfile ti = Task(1, cio, pio);
        TaskProfile tj = Task(2, ccpu, IoPattern::kSequential);
        BalancePoint bp = SolveBalance(ti, tj, m, true);
        bench_obs->metrics()->counter("balance.points_solved")->Increment();
        if (!bp.valid) continue;
        bench_obs->metrics()->histogram("balance.xi", {1, 2, 3, 4, 5, 6, 7})
            ->Observe(bp.xi);
        bench_obs->obs().Emit(
            {"balance point", "sched", 'i', 0.0, 0.0, 0,
             {{"c_io", cio}, {"c_cpu", ccpu}, {"xi", bp.xi}, {"xj", bp.xj}}});
        InterCost ic = TInter(ti, tj, m, true);
        double serial = TIntra(ti, m) + TIntra(tj, m);
        fig4.AddRow({StrFormat("%.0f", cio), StrFormat("%.0f", ccpu),
                     IoPatternName(pio), StrFormat("%.2f", bp.xi),
                     StrFormat("%.2f", bp.xj),
                     StrFormat("%.0f", bp.effective_bandwidth),
                     ic.valid ? StrFormat("%.2f", ic.t_inter / serial)
                              : std::string("-")});
      }
    }
  }
  std::printf("%s\n", fig4.ToString().c_str());
  std::printf(
      "reading: T_inter/T_intra < 1 means pairing at the balance point\n"
      "beats serial intra-only execution — true across the grid, with the\n"
      "smallest wins where seek interference (sequential pairs near even\n"
      "io splits) erodes the effective bandwidth.\n");
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) {
  xprs::BenchObs bench_obs(&argc, argv);
  xprs::Run(&bench_obs);
  bench_obs.Finish();
  return 0;
}
