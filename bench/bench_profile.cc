// Profiled 3-way-join run: the EXPLAIN ANALYZE showcase bench.
//
// Builds a fixed synthetic orders/custs catalog, runs a 3-join aggregate
// query three times — sequentially, vectorized, and through the parallel
// master — and prints the EXPLAIN ANALYZE reports plus the tuple-vs-batch
// wall-clock speedup. With --profile-out= the parallel run's profile is
// dumped as JSON; --metrics-out= / --trace-out= capture the metrics
// snapshot (profile.* counters included) and the Chrome trace with the
// profiler's utilization counter track. Used by scripts/ci.sh to
// schema-validate the emitted profile artifacts. (bench_exec is the
// dedicated tuple-vs-vectorized throughput gate; the comparison here is
// informational.)
//
//   bench_profile [--rows=N] [--trace-out=f] [--metrics-out=f]
//                 [--profile-out=f]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_obs.h"
#include "sql/engine.h"

namespace xprs {
namespace {

Status BuildCatalog(Catalog* catalog, int orders_rows) {
  XPRS_ASSIGN_OR_RETURN(Table * orders,
                        catalog->CreateTable("orders", Schema::PaperSchema()));
  for (int i = 0; i < orders_rows; ++i) {
    XPRS_RETURN_IF_ERROR(orders->file().Append(
        Tuple({Value(int32_t{i % 100}),
               Value(std::string("o") + std::to_string(i))})));
  }
  XPRS_RETURN_IF_ERROR(orders->file().Flush());
  XPRS_RETURN_IF_ERROR(orders->BuildIndex(0));
  XPRS_RETURN_IF_ERROR(orders->ComputeStats());

  XPRS_ASSIGN_OR_RETURN(Table * custs,
                        catalog->CreateTable("custs", Schema::PaperSchema()));
  for (int i = 0; i < 100; ++i) {
    XPRS_RETURN_IF_ERROR(custs->file().Append(
        Tuple({Value(int32_t{i}),
               Value(std::string("c") + std::to_string(i))})));
  }
  XPRS_RETURN_IF_ERROR(custs->file().Flush());
  XPRS_RETURN_IF_ERROR(custs->BuildIndex(0));
  XPRS_RETURN_IF_ERROR(custs->ComputeStats());
  return Status::OK();
}

int Run(int argc, char** argv) {
  BenchObs bench_obs(&argc, argv);
  int orders_rows = 3000;
  for (int i = 1; i < argc; ++i) {
    BenchFlagInt(argv[i], "--rows=", &orders_rows);
  }

  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  Status built = BuildCatalog(&catalog, orders_rows);
  if (!built.ok()) {
    std::fprintf(stderr, "catalog: %s\n", built.ToString().c_str());
    return 1;
  }

  CostModel model;
  SqlEngine engine(&catalog, MachineConfig::PaperConfig(), &model);
  const std::string sql =
      "SELECT count(o1.a) FROM orders o1, custs c, orders o2 "
      "WHERE o1.a = c.a AND c.a = o2.a AND c.a < 50";

  std::printf("== bench_profile: %s\n", sql.c_str());

  const auto seq_start = std::chrono::steady_clock::now();
  auto seq = engine.ExplainAnalyze(sql);
  const auto seq_end = std::chrono::steady_clock::now();
  if (!seq.ok()) {
    std::fprintf(stderr, "sequential: %s\n", seq.status().ToString().c_str());
    return 1;
  }
  std::printf("\n-- sequential EXPLAIN ANALYZE --\n%s\n",
              seq->analyze_text.c_str());

  ExecContext vec_ctx;
  vec_ctx.vectorized = true;
  const auto vec_start = std::chrono::steady_clock::now();
  auto vec = engine.ExplainAnalyze(sql, vec_ctx);
  const auto vec_end = std::chrono::steady_clock::now();
  if (!vec.ok()) {
    std::fprintf(stderr, "vectorized: %s\n", vec.status().ToString().c_str());
    return 1;
  }
  std::printf("-- vectorized EXPLAIN ANALYZE --\n%s\n",
              vec->analyze_text.c_str());
  if (seq->rows.size() != vec->rows.size() ||
      seq->rows[0].ToString() != vec->rows[0].ToString()) {
    std::fprintf(stderr, "result mismatch: seq=%s vec=%s\n",
                 seq->rows[0].ToString().c_str(),
                 vec->rows[0].ToString().c_str());
    return 1;
  }
  const double seq_ms =
      std::chrono::duration<double, std::milli>(seq_end - seq_start).count();
  const double vec_ms =
      std::chrono::duration<double, std::milli>(vec_end - vec_start).count();
  std::printf("tuple %.2f ms, vectorized %.2f ms (%.2fx)\n\n", seq_ms, vec_ms,
              vec_ms > 0 ? seq_ms / vec_ms : 0.0);

  MasterOptions options;
  options.obs = bench_obs.obs();
  auto par = engine.ExplainAnalyzeParallel(sql, options);
  if (!par.ok()) {
    std::fprintf(stderr, "parallel: %s\n", par.status().ToString().c_str());
    return 1;
  }
  std::printf("-- parallel EXPLAIN ANALYZE --\n%s\n",
              par->analyze_text.c_str());

  if (seq->rows.size() != par->rows.size() ||
      seq->rows[0].ToString() != par->rows[0].ToString()) {
    std::fprintf(stderr, "result mismatch: seq=%s par=%s\n",
                 seq->rows[0].ToString().c_str(),
                 par->rows[0].ToString().c_str());
    return 1;
  }
  std::printf("result: %s (sequential == parallel)\n",
              par->rows[0].ToString().c_str());

  bench_obs.RegisterProfile(par->profile);
  bench_obs.Finish();
  return 0;
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) { return xprs::Run(argc, argv); }
