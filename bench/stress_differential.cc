// Long-running differential stress driver.
//
//   stress_differential [--seed=N] [--iters=N] [--fault-rate=P] [--chaos]
//                       [--timeout-ms=N] [--replay-out=FILE]
//
// Each iteration builds a fresh random workload, generates a batch of
// queries and pushes every one through the full differential oracle
// (serial / fragmented / parallel at several degrees / master / spill /
// pooled), the deterministic fault-hook cases, the random-rate read-fault
// case and the §2.2 scan io conservation check.
//
// --chaos additionally re-runs every query through CheckPlanChaos: all
// modes execute with a rate-`--fault-rate` read-fault injector armed, and
// must either match the reference or fail retryably (the resilience
// ladder's recoveries show up in the per-iteration report).
//
// --timeout-ms=N arms a watchdog: any single oracle call that runs longer
// than N ms (a hang, a livelock, a runaway retry loop) prints the replay
// seed and aborts, so the stuck state is debuggable instead of silent.
//
// The effective seed is printed on startup; any failure is replayable with
// `stress_differential --seed=<printed seed>` (or XPRS_SEED=<seed> when
// --seed was not given explicitly).
//
// --replay-out=FILE additionally persists a one-line replay record (seed,
// iteration, query, failing check) on the first divergence, so a CI run
// that trips leaves a machine-readable repro behind even when its logs
// scroll away.

#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/disk_array.h"
#include "testing/differential.h"
#include "testing/query_gen.h"
#include "util/rng.h"
#include "util/str.h"
#include "workload/relations.h"

namespace {

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

// Per-call watchdog: Beat() before each oracle call; if any call then runs
// past the timeout, print the replay seed and abort. Disabled when
// timeout_ms <= 0.
class Watchdog {
 public:
  Watchdog(int timeout_ms, uint64_t seed) : timeout_ms_(timeout_ms),
                                            seed_(seed) {
    if (timeout_ms_ <= 0) return;
    thread_ = std::thread([this] { Loop(); });
  }

  ~Watchdog() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void Beat(int iter, int query) {
    if (!thread_.joinable()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    iter_ = iter;
    query_ = query;
    last_beat_ = std::chrono::steady_clock::now();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    last_beat_ = std::chrono::steady_clock::now();
    while (!done_) {
      const auto deadline =
          last_beat_ + std::chrono::milliseconds(timeout_ms_);
      if (cv_.wait_until(lock, deadline, [this] { return done_; })) return;
      if (std::chrono::steady_clock::now() >= deadline) {
        std::fprintf(stderr,
                     "stress_differential: WATCHDOG — iter %d query %d "
                     "exceeded %d ms; replay with --seed=%" PRIu64 "\n",
                     iter_, query_, timeout_ms_, seed_);
        std::fflush(stderr);
        std::abort();
      }
    }
  }

  const int timeout_ms_;
  const uint64_t seed_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
  bool done_ = false;
  int iter_ = 0;
  int query_ = 0;
  std::chrono::steady_clock::time_point last_beat_;
};

// Persists the replay line for the first divergence. `check` names which
// oracle check tripped (plan, chaos, fault-surfacing, random-faults,
// io-conservation).
void WriteReplayRecord(const std::string& path, uint64_t seed, int iter,
                       int query, const char* check,
                       const xprs::Status& status) {
  if (path.empty()) return;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write replay record %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "--seed=%" PRIu64 " iter=%d query=%d check=%s status=%s\n",
               seed, iter, query, check, status.ToString().c_str());
  std::fclose(f);
  std::fprintf(stderr, "replay record written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = xprs::TestSeed(0x57E55D1FF);
  int iters = 200;
  double fault_rate = 0.02;
  int queries_per_iter = 4;
  bool chaos = false;
  int timeout_ms = 0;
  std::string replay_out;

  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--seed", &value)) {
      seed = std::strtoull(value, nullptr, 0);
    } else if (ParseFlag(argv[i], "--iters", &value)) {
      iters = std::atoi(value);
    } else if (ParseFlag(argv[i], "--fault-rate", &value)) {
      fault_rate = std::atof(value);
    } else if (ParseFlag(argv[i], "--timeout-ms", &value)) {
      timeout_ms = std::atoi(value);
    } else if (ParseFlag(argv[i], "--replay-out", &value)) {
      replay_out = value;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed=N] [--iters=N] [--fault-rate=P] "
                   "[--chaos] [--timeout-ms=N] [--replay-out=FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  std::printf("stress_differential: seed=%" PRIu64
              " iters=%d fault_rate=%g chaos=%d timeout_ms=%d "
              "(replay: --seed=%" PRIu64 ")\n",
              seed, iters, fault_rate, chaos ? 1 : 0, timeout_ms, seed);
  std::fflush(stdout);

  Watchdog watchdog(timeout_ms, seed);

  xprs::Rng rng(seed);
  uint64_t queries_checked = 0;
  for (int iter = 0; iter < iters; ++iter) {
    xprs::DiskArray array(4, xprs::DiskMode::kInstant);
    xprs::Catalog catalog(&array);
    xprs::GeneratedWorkloadOptions workload;
    // Vary the population shape across iterations.
    workload.num_relations = 2 + static_cast<int>(rng.NextUint64(3));
    workload.max_null_key_fraction = rng.NextBool(0.5) ? 0.3 : 0.0;
    xprs::Rng build_rng = rng.Fork();
    auto tables = xprs::BuildGeneratedWorkload(&catalog, workload, &build_rng);
    if (!tables.ok()) {
      std::fprintf(stderr, "iter %d (seed %" PRIu64 "): workload: %s\n",
                   iter, seed, tables.status().ToString().c_str());
      return 1;
    }

    xprs::DifferentialOptions options;
    options.spill_memory_tuples = 16 + rng.NextUint64(128);
    if (chaos) options.chaos_read_fault_rate = fault_rate;
    xprs::DifferentialOracle oracle(&array, options, rng.Next());
    xprs::QueryGenerator gen(tables.value(), xprs::QueryGenerator::Options(),
                             rng.Next());

    for (int q = 0; q < queries_per_iter; ++q) {
      watchdog.Beat(iter, q);
      std::unique_ptr<xprs::PlanNode> plan = gen.NextPlan();
      const char* check = "plan";
      xprs::Status status = oracle.CheckPlan(*plan);
      if (status.ok() && chaos) {
        check = "chaos";
        status = oracle.CheckPlanChaos(*plan);
      }
      if (status.ok() && q == 0) {
        check = "fault-surfacing";
        status = oracle.CheckFaultSurfacing(*plan);
      }
      if (status.ok() && q == 1) {
        check = "random-faults";
        status = oracle.CheckRandomReadFaults(*plan, fault_rate);
      }
      if (!status.ok()) {
        std::fprintf(stderr,
                     "iter %d query %d FAILED %s (replay with "
                     "--seed=%" PRIu64 "):\n%s\n",
                     iter, q, check, seed, status.ToString().c_str());
        WriteReplayRecord(replay_out, seed, iter, q, check, status);
        return 1;
      }
      ++queries_checked;
    }
    watchdog.Beat(iter, queries_per_iter);
    xprs::Status conservation =
        oracle.CheckScanIoConservation(tables.value()[0]);
    if (!conservation.ok()) {
      std::fprintf(stderr, "iter %d io conservation FAILED (--seed=%" PRIu64
                           "):\n%s\n",
                   iter, seed, conservation.ToString().c_str());
      WriteReplayRecord(replay_out, seed, iter, queries_per_iter,
                        "io-conservation", conservation);
      return 1;
    }
    if ((iter + 1) % 25 == 0) {
      std::printf("  iter %d/%d: %s\n", iter + 1, iters,
                  oracle.report().ToString().c_str());
      std::fflush(stdout);
    }
  }
  std::printf("stress_differential: PASS — %" PRIu64
              " queries checked over %d iterations\n",
              queries_checked, iters);
  return 0;
}
