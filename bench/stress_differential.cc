// Long-running differential stress driver.
//
//   stress_differential [--seed=N] [--iters=N] [--fault-rate=P]
//
// Each iteration builds a fresh random workload, generates a batch of
// queries and pushes every one through the full differential oracle
// (serial / fragmented / parallel at several degrees / master / spill /
// pooled), the deterministic fault-hook cases, the random-rate read-fault
// case and the §2.2 scan io conservation check.
//
// The effective seed is printed on startup; any failure is replayable with
// `stress_differential --seed=<printed seed>` (or XPRS_SEED=<seed> when
// --seed was not given explicitly).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "storage/disk_array.h"
#include "testing/differential.h"
#include "testing/query_gen.h"
#include "util/rng.h"
#include "util/str.h"
#include "workload/relations.h"

namespace {

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = xprs::TestSeed(0x57E55D1FF);
  int iters = 200;
  double fault_rate = 0.02;
  int queries_per_iter = 4;

  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (ParseFlag(argv[i], "--seed", &value)) {
      seed = std::strtoull(value, nullptr, 0);
    } else if (ParseFlag(argv[i], "--iters", &value)) {
      iters = std::atoi(value);
    } else if (ParseFlag(argv[i], "--fault-rate", &value)) {
      fault_rate = std::atof(value);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed=N] [--iters=N] [--fault-rate=P]\n",
                   argv[0]);
      return 2;
    }
  }
  std::printf("stress_differential: seed=%" PRIu64
              " iters=%d fault_rate=%g (replay: --seed=%" PRIu64 ")\n",
              seed, iters, fault_rate, seed);
  std::fflush(stdout);

  xprs::Rng rng(seed);
  uint64_t queries_checked = 0;
  for (int iter = 0; iter < iters; ++iter) {
    xprs::DiskArray array(4, xprs::DiskMode::kInstant);
    xprs::Catalog catalog(&array);
    xprs::GeneratedWorkloadOptions workload;
    // Vary the population shape across iterations.
    workload.num_relations = 2 + static_cast<int>(rng.NextUint64(3));
    workload.max_null_key_fraction = rng.NextBool(0.5) ? 0.3 : 0.0;
    xprs::Rng build_rng = rng.Fork();
    auto tables = xprs::BuildGeneratedWorkload(&catalog, workload, &build_rng);
    if (!tables.ok()) {
      std::fprintf(stderr, "iter %d (seed %" PRIu64 "): workload: %s\n",
                   iter, seed, tables.status().ToString().c_str());
      return 1;
    }

    xprs::DifferentialOptions options;
    options.spill_memory_tuples = 16 + rng.NextUint64(128);
    xprs::DifferentialOracle oracle(&array, options, rng.Next());
    xprs::QueryGenerator gen(tables.value(), xprs::QueryGenerator::Options(),
                             rng.Next());

    for (int q = 0; q < queries_per_iter; ++q) {
      std::unique_ptr<xprs::PlanNode> plan = gen.NextPlan();
      xprs::Status status = oracle.CheckPlan(*plan);
      if (status.ok() && q == 0) status = oracle.CheckFaultSurfacing(*plan);
      if (status.ok() && q == 1)
        status = oracle.CheckRandomReadFaults(*plan, fault_rate);
      if (!status.ok()) {
        std::fprintf(stderr,
                     "iter %d query %d FAILED (replay with --seed=%" PRIu64
                     "):\n%s\n",
                     iter, q, seed, status.ToString().c_str());
        return 1;
      }
      ++queries_checked;
    }
    xprs::Status conservation =
        oracle.CheckScanIoConservation(tables.value()[0]);
    if (!conservation.ok()) {
      std::fprintf(stderr, "iter %d io conservation FAILED (--seed=%" PRIu64
                           "):\n%s\n",
                   iter, seed, conservation.ToString().c_str());
      return 1;
    }
    if ((iter + 1) % 25 == 0) {
      std::printf("  iter %d/%d: %s\n", iter + 1, iters,
                  oracle.report().ToString().c_str());
      std::fflush(stdout);
    }
  }
  std::printf("stress_differential: PASS — %" PRIu64
              " queries checked over %d iterations\n",
              queries_checked, iters);
  return 0;
}
