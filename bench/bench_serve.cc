// Multi-query serving benchmark: latency and throughput of the
// ServingEngine + QueryScheduler stack under concurrent load.
//
// Three phases:
//
//   correctness  every query of the mix executed concurrently through the
//                serving engine and compared against a serial SqlEngine
//                oracle; the diff count must be zero
//   closed loop  K client threads issue queries back-to-back (1, 2, ...,
//                --clients doubling); reports throughput and exact
//                p50/p95/p99 latency per point
//   open loop    a submitter offers queries at a fixed arrival rate for
//                --open-seconds per point of the --qps ladder; completions
//                are timestamped by the per-query hook, and queue-full
//                admission rejections are reported separately — that is
//                the load shedding showing up at overload
//
//   bench_serve [--rows=N] [--clients=K] [--queries-per-client=M]
//               [--qps=a,b,c] [--open-seconds=S] [--out=file.json]
//
// scripts/ci.sh runs this with --out=build/BENCH_serve.json and gates on
// zero correctness diffs and peak concurrency >= 2.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_obs.h"
#include "serve/serving_engine.h"
#include "sql/engine.h"
#include "storage/catalog.h"

namespace xprs {
namespace {

using Clock = std::chrono::steady_clock;

const std::vector<std::string>& QueryMix() {
  static const std::vector<std::string> mix = {
      "SELECT * FROM custs WHERE a BETWEEN 10 AND 39",
      "SELECT count(a) FROM orders",
      "SELECT * FROM orders WHERE a >= 80",
      "SELECT o.a, c.b FROM orders o, custs c WHERE o.a = c.a AND c.a < 40",
      "SELECT max(a) FROM custs WHERE a < 70",
      "SELECT sum(a) FROM orders WHERE a BETWEEN 5 AND 60",
  };
  return mix;
}

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0;
};

Percentiles ExactPercentiles(std::vector<double>* latencies) {
  Percentiles p;
  if (latencies->empty()) return p;
  std::sort(latencies->begin(), latencies->end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * (latencies->size() - 1));
    return (*latencies)[i];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

struct LoopResult {
  int clients = 0;
  double offered_qps = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t failed = 0;
  double throughput_qps = 0;
  Percentiles latency_ms;
};

std::unique_ptr<ServingEngine> MakeServingEngine(Catalog* catalog,
                                                 const CostModel* model,
                                                 int max_concurrent,
                                                 size_t queue_depth) {
  ServingEngine::Options options;
  options.serve.machine = MachineConfig::PaperConfig();
  options.serve.max_concurrent = max_concurrent;
  options.serve.max_queue_depth = queue_depth;
  options.buffer_pool_frames = 128;
  return std::make_unique<ServingEngine>(
      catalog, MachineConfig::PaperConfig(), model, std::move(options));
}

// K clients, back-to-back queries: service-time-bound latency.
LoopResult RunClosedLoop(Catalog* catalog, const CostModel* model,
                         int clients, int queries_per_client,
                         int* peak_running) {
  auto engine = MakeServingEngine(catalog, model, /*max_concurrent=*/4,
                                  /*queue_depth=*/256);
  LoopResult result;
  result.clients = clients;
  std::mutex mutex;
  std::vector<double> latencies_ms;
  std::atomic<uint64_t> failed{0};

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      auto session = engine->OpenSession();
      const auto& mix = QueryMix();
      std::vector<double> local;
      local.reserve(queries_per_client);
      for (int i = 0; i < queries_per_client; ++i) {
        const std::string& sql = mix[(t + i) % mix.size()];
        const auto q0 = Clock::now();
        auto r = session->Execute(sql);
        if (!r.ok()) {
          failed.fetch_add(1);
          continue;
        }
        local.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - q0)
                .count());
      }
      engine->CloseSession(session);
      std::lock_guard<std::mutex> lock(mutex);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = std::chrono::duration<double>(Clock::now() - start)
                          .count();

  result.completed = latencies_ms.size();
  result.failed = failed.load();
  result.throughput_qps = secs > 0 ? result.completed / secs : 0;
  result.latency_ms = ExactPercentiles(&latencies_ms);
  *peak_running = std::max(*peak_running, engine->scheduler().peak_running());
  return result;
}

// Offered load at a fixed arrival rate; latency includes queue wait and
// admission rejections count the shed load.
LoopResult RunOpenLoop(Catalog* catalog, const CostModel* model, double qps,
                       double seconds, int* peak_running) {
  auto engine = MakeServingEngine(catalog, model, /*max_concurrent=*/4,
                                  /*queue_depth=*/64);
  LoopResult result;
  result.offered_qps = qps;

  auto session = engine->OpenSession();
  std::mutex mutex;
  std::vector<double> latencies_ms;
  std::atomic<uint64_t> failed{0};
  std::vector<SubmittedQuery> outstanding;
  outstanding.reserve(static_cast<size_t>(qps * seconds) + 1);

  const auto start = Clock::now();
  const auto interval = std::chrono::duration<double>(1.0 / qps);
  const auto& mix = QueryMix();
  uint64_t n = 0;
  while (true) {
    const auto arrival =
        start + std::chrono::duration_cast<Clock::duration>(interval * n);
    if (std::chrono::duration<double>(arrival - start).count() >= seconds)
      break;
    std::this_thread::sleep_until(arrival);

    QueryOptions options;
    const auto submit_time = Clock::now();
    options.on_complete = [&mutex, &latencies_ms, &failed,
                           submit_time](const Status& status) {
      const double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - submit_time)
                            .count();
      if (!status.ok()) {
        failed.fetch_add(1);
        return;
      }
      std::lock_guard<std::mutex> lock(mutex);
      latencies_ms.push_back(ms);
    };
    auto submitted = session->Submit(mix[n % mix.size()], options);
    if (!submitted.ok()) {
      // Queue-full rejects and overload-controller sheds are both the
      // admission layer deliberately dropping offered load — report them
      // as shed work, not failures.
      if (QueryScheduler::IsAdmissionReject(submitted.status()) ||
          OverloadController::IsOverloadShed(submitted.status()))
        ++result.rejected;
      else
        failed.fetch_add(1);
    } else {
      outstanding.push_back(std::move(*submitted));
    }
    ++n;
  }
  for (SubmittedQuery& q : outstanding) (void)q.ticket.Wait();
  const double window =
      std::chrono::duration<double>(Clock::now() - start).count();

  engine->CloseSession(session);
  *peak_running = std::max(*peak_running, engine->scheduler().peak_running());

  std::lock_guard<std::mutex> lock(mutex);
  result.completed = latencies_ms.size();
  result.failed = failed.load();
  result.throughput_qps = window > 0 ? result.completed / window : 0;
  result.latency_ms = ExactPercentiles(&latencies_ms);
  return result;
}

// Every query of the mix, four sessions at once, versus the serial oracle.
uint64_t RunCorrectness(Catalog* catalog, const CostModel* model,
                        uint64_t* checked, int* peak_running) {
  SqlEngine oracle(catalog, MachineConfig::PaperConfig(), model);
  std::vector<std::multiset<std::string>> expected;
  for (const std::string& sql : QueryMix()) {
    auto r = oracle.Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "oracle failed on %s: %s\n", sql.c_str(),
                   r.status().ToString().c_str());
      std::exit(1);
    }
    std::multiset<std::string> canon;
    for (const Tuple& t : r->rows) canon.insert(t.ToString());
    expected.push_back(std::move(canon));
  }

  auto engine = MakeServingEngine(catalog, model, /*max_concurrent=*/4,
                                  /*queue_depth=*/256);
  std::atomic<uint64_t> diffs{0};
  std::atomic<uint64_t> total{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      auto session = engine->OpenSession();
      for (int round = 0; round < 4; ++round) {
        const auto& mix = QueryMix();
        for (size_t q = 0; q < mix.size(); ++q) {
          auto r = session->Execute(mix[q]);
          total.fetch_add(1);
          if (!r.ok()) {
            diffs.fetch_add(1);
            continue;
          }
          std::multiset<std::string> canon;
          for (const Tuple& row : r->rows) canon.insert(row.ToString());
          if (canon != expected[q]) diffs.fetch_add(1);
        }
      }
      engine->CloseSession(session);
    });
  }
  for (std::thread& t : threads) t.join();
  *checked = total.load();
  *peak_running = std::max(*peak_running, engine->scheduler().peak_running());
  return diffs.load();
}

int Run(int argc, char** argv) {
  int rows = 3000;
  int clients = 4;
  int queries_per_client = 25;
  double open_seconds = 1.0;
  std::vector<double> qps_ladder = {100, 400, 1200};
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    BenchFlagInt(argv[i], "--rows=", &rows);
    BenchFlagInt(argv[i], "--clients=", &clients);
    BenchFlagInt(argv[i], "--queries-per-client=", &queries_per_client);
    BenchFlagDouble(argv[i], "--open-seconds=", &open_seconds);
    BenchFlagDoubleList(argv[i], "--qps=", &qps_ladder);
    BenchFlagString(argv[i], "--out=", &out_path);
  }

  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  CostModel model;

  Table* orders = catalog.CreateTable("orders", Schema::PaperSchema()).value();
  for (int i = 0; i < rows; ++i) {
    Status st = orders->file().Append(
        Tuple({Value(int32_t{i % 100}),
               Value("o" + std::to_string(i % 37))}));
    if (!st.ok()) {
      std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (!orders->file().Flush().ok() || !orders->BuildIndex(0).ok() ||
      !orders->ComputeStats().ok())
    return 1;

  Table* custs = catalog.CreateTable("custs", Schema::PaperSchema()).value();
  for (int i = 0; i < rows / 10; ++i) {
    Status st = custs->file().Append(
        Tuple({Value(int32_t{i % 100}), Value("c" + std::to_string(i % 23))}));
    if (!st.ok()) return 1;
  }
  if (!custs->file().Flush().ok() || !custs->BuildIndex(0).ok() ||
      !custs->ComputeStats().ok())
    return 1;

  int peak_running = 0;
  uint64_t correctness_checked = 0;
  const uint64_t correctness_diffs =
      RunCorrectness(&catalog, &model, &correctness_checked, &peak_running);
  std::printf("== bench_serve (rows=%d)\n", rows);
  std::printf("correctness: %llu concurrent queries, %llu diffs\n",
              static_cast<unsigned long long>(correctness_checked),
              static_cast<unsigned long long>(correctness_diffs));

  std::vector<LoopResult> closed;
  for (int k = 1; k <= clients; k *= 2) {
    closed.push_back(RunClosedLoop(&catalog, &model, k, queries_per_client,
                                   &peak_running));
    const LoopResult& r = closed.back();
    std::printf(
        "closed loop %2d clients: %6.0f q/s  p50=%.2fms p95=%.2fms "
        "p99=%.2fms (%llu ok, %llu failed)\n",
        r.clients, r.throughput_qps, r.latency_ms.p50, r.latency_ms.p95,
        r.latency_ms.p99, static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed));
  }

  std::vector<LoopResult> open;
  for (double qps : qps_ladder) {
    open.push_back(
        RunOpenLoop(&catalog, &model, qps, open_seconds, &peak_running));
    const LoopResult& r = open.back();
    std::printf(
        "open loop %6.0f q/s offered: %6.0f q/s done  p50=%.2fms "
        "p99=%.2fms (%llu ok, %llu rejected, %llu failed)\n",
        r.offered_qps, r.throughput_qps, r.latency_ms.p50, r.latency_ms.p99,
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.failed));
  }
  std::printf("peak concurrent queries: %d\n", peak_running);

  if (!out_path.empty()) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"rows\":%d,\"peak_running\":%d,"
                 "\"correctness\":{\"queries\":%llu,\"diffs\":%llu},"
                 "\"closed_loop\":[",
                 rows, peak_running,
                 static_cast<unsigned long long>(correctness_checked),
                 static_cast<unsigned long long>(correctness_diffs));
    for (size_t i = 0; i < closed.size(); ++i) {
      const LoopResult& r = closed[i];
      std::fprintf(f,
                   "%s{\"clients\":%d,\"completed\":%llu,\"failed\":%llu,"
                   "\"throughput_qps\":%.1f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,"
                   "\"p99_ms\":%.3f}",
                   i == 0 ? "" : ",", r.clients,
                   static_cast<unsigned long long>(r.completed),
                   static_cast<unsigned long long>(r.failed),
                   r.throughput_qps, r.latency_ms.p50, r.latency_ms.p95,
                   r.latency_ms.p99);
    }
    std::fprintf(f, "],\"open_loop\":[");
    for (size_t i = 0; i < open.size(); ++i) {
      const LoopResult& r = open[i];
      std::fprintf(f,
                   "%s{\"offered_qps\":%.1f,\"completed\":%llu,"
                   "\"rejected\":%llu,\"failed\":%llu,"
                   "\"throughput_qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}",
                   i == 0 ? "" : ",", r.offered_qps,
                   static_cast<unsigned long long>(r.completed),
                   static_cast<unsigned long long>(r.rejected),
                   static_cast<unsigned long long>(r.failed),
                   r.throughput_qps, r.latency_ms.p50, r.latency_ms.p99);
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) { return xprs::Run(argc, argv); }
