// Standing macro-benchmark: the TPC-H-flavored mix (src/workload/macro.h)
// executed end to end in every engine mode, with a tracked perf
// trajectory.
//
//   serial      tuple-at-a-time executor
//   vectorized  batch-at-a-time executor (ctx.vectorized)
//   spill       memory-bounded spilling operators
//   parallel    the parallel master backend
//   served      the full serving stack (admission control, lifecycle
//               spans, slow-query log) under 4 concurrent client threads
//
// Every mode runs the same queries; rows are checksummed order-
// independently against the serial oracle, so the JSON's correctness
// block gates cross-mode agreement. The served phase additionally reports
// the per-query lifecycle span breakdown (admission / queue_wait /
// execute / drain out of the root span) reconstructed from the trace
// recorder, and the tracing-overhead block measures the serial mix with
// the obs bundle absent vs attached-but-disabled (interleaved arms,
// min-of-reps) — the "tracing compiled in" tax ci.sh caps at 2%.
//
//   bench_macro [--scale=F] [--dist=uniform|skewed|null-heavy] [--reps=N]
//               [--slow-ms=T] [--out=BENCH_macro.json]
//               [--trace-out=f] [--metrics-out=f]
//
// scripts/ci.sh runs this, schema-validates the JSON, and feeds it to
// scripts/perf_compare.py against bench/baselines/BENCH_macro.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_obs.h"
#include "serve/serving_engine.h"
#include "sql/engine.h"
#include "storage/catalog.h"
#include "workload/macro.h"

namespace xprs {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --- order-independent result digest ---------------------------------------

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Digest {
  uint64_t rows = 0;
  uint64_t checksum = 0;  ///< sum of per-row FNV hashes (mod 2^64)
  bool operator==(const Digest& o) const {
    return rows == o.rows && checksum == o.checksum;
  }
};

Digest DigestRows(const SqlResult& result) {
  Digest d;
  for (const Tuple& row : result.rows) {
    ++d.rows;
    d.checksum += Fnv1a(row.ToString());
  }
  return d;
}

// --- latency stats ---------------------------------------------------------

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0;
};

Percentiles ExactPercentiles(std::vector<double> latencies) {
  Percentiles p;
  if (latencies.empty()) return p;
  std::sort(latencies.begin(), latencies.end());
  auto at = [&](double q) {
    size_t i = static_cast<size_t>(q * (latencies.size() - 1));
    return latencies[i];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

struct ModeResult {
  std::string name;
  uint64_t executed = 0;
  uint64_t diffs = 0;
  double total_seconds = 0.0;
  double throughput_qps = 0.0;
  Percentiles latency_ms;
  double speedup_vs_serial = 0.0;
  /// mean latency per query name, for perf_compare's explanations
  std::map<std::string, double> per_query_mean_ms;
  /// best-of-reps latency per query name; the speedup gate runs on the
  /// sum of these, because one descheduled rep should not fail CI.
  std::map<std::string, double> per_query_best_ms;

  double best_total_seconds() const {
    double total = 0.0;
    for (const auto& [q, ms] : per_query_best_ms) total += ms;
    return 1e-3 * total;
  }
};

// --- served-phase span breakdown -------------------------------------------

struct PhaseBreakdown {
  uint64_t queries = 0;
  double total_ms = 0, admission_ms = 0, queue_ms = 0, exec_ms = 0,
         drain_ms = 0;
  double coverage_min = 1.0, coverage_sum = 0.0;
};

const TraceValue* FindArg(const TraceEvent& e, const char* key) {
  for (const auto& [k, v] : e.args)
    if (k == key) return &v;
  return nullptr;
}

/// Rebuilds per-query phase timings from the recorder's serve spans:
/// key = query text, value = mean phase durations over that query's runs.
std::map<std::string, PhaseBreakdown> SpanBreakdown(
    const std::vector<TraceEvent>& events) {
  struct Root {
    std::string query;
    double total = 0, admission = 0, queue = 0, exec = 0, drain = 0;
  };
  std::map<int64_t, Root> roots;  // span_id -> root
  for (const TraceEvent& e : events) {
    if (e.category != "serve" || e.phase != 'X' || e.name != "query") continue;
    const TraceValue* id = FindArg(e, "span_id");
    const TraceValue* query = FindArg(e, "query");
    if (id == nullptr) continue;
    Root root;
    root.query = query != nullptr ? query->str : "";
    root.total = e.duration;
    roots[static_cast<int64_t>(id->num)] = root;
  }
  for (const TraceEvent& e : events) {
    if (e.category != "serve" || e.phase != 'X' || e.name == "query") continue;
    const TraceValue* parent = FindArg(e, "parent");
    if (parent == nullptr) continue;
    auto it = roots.find(static_cast<int64_t>(parent->num));
    if (it == roots.end()) continue;
    if (e.name == "admission") it->second.admission += e.duration;
    if (e.name == "queue_wait") it->second.queue += e.duration;
    if (e.name == "execute") it->second.exec += e.duration;
    if (e.name == "drain") it->second.drain += e.duration;
  }

  std::map<std::string, PhaseBreakdown> by_query;
  for (const auto& [id, r] : roots) {
    PhaseBreakdown& b = by_query[r.query];
    ++b.queries;
    b.total_ms += 1e3 * r.total;
    b.admission_ms += 1e3 * r.admission;
    b.queue_ms += 1e3 * r.queue;
    b.exec_ms += 1e3 * r.exec;
    b.drain_ms += 1e3 * r.drain;
    const double children = r.admission + r.queue + r.exec + r.drain;
    const double coverage = r.total > 0 ? children / r.total : 1.0;
    b.coverage_min = std::min(b.coverage_min, coverage);
    b.coverage_sum += coverage;
  }
  for (auto& [q, b] : by_query) {
    if (b.queries == 0) continue;
    const double n = static_cast<double>(b.queries);
    b.total_ms /= n;
    b.admission_ms /= n;
    b.queue_ms /= n;
    b.exec_ms /= n;
    b.drain_ms /= n;
  }
  return by_query;
}

// --- the bench -------------------------------------------------------------

struct Config {
  double scale = 1.0;
  MacroDistribution distribution = MacroDistribution::kUniform;
  int reps = 3;
  double slow_ms = 5.0;
  std::string out_path;
};

/// Runs one query through the mode's executor and returns its digest.
using QueryRunner =
    std::function<StatusOr<SqlResult>(const std::string& sql)>;

ModeResult RunMode(const std::string& name, const Config& config,
                   const std::vector<MacroQuery>& mix,
                   const std::map<std::string, Digest>& oracle,
                   const QueryRunner& run) {
  ModeResult result;
  result.name = name;
  std::vector<double> latencies_ms;
  std::map<std::string, double> sum_ms;
  const auto t0 = Clock::now();
  for (int rep = 0; rep < config.reps; ++rep) {
    for (const MacroQuery& q : mix) {
      const auto q0 = Clock::now();
      StatusOr<SqlResult> r = run(q.sql);
      const double ms = 1e3 * SecondsSince(q0);
      ++result.executed;
      if (!r.ok()) {
        std::fprintf(stderr, "%s: %s failed: %s\n", name.c_str(),
                     q.name.c_str(), r.status().ToString().c_str());
        ++result.diffs;
        continue;
      }
      if (!(DigestRows(*r) == oracle.at(q.name))) ++result.diffs;
      latencies_ms.push_back(ms);
      sum_ms[q.name] += ms;
      auto [it, fresh] = result.per_query_best_ms.emplace(q.name, ms);
      if (!fresh && ms < it->second) it->second = ms;
    }
  }
  result.total_seconds = SecondsSince(t0);
  result.throughput_qps = result.total_seconds > 0
                              ? static_cast<double>(result.executed) /
                                    result.total_seconds
                              : 0.0;
  result.latency_ms = ExactPercentiles(latencies_ms);
  for (const auto& [q, total] : sum_ms)
    result.per_query_mean_ms[q] = total / config.reps;
  return result;
}

/// The served mode: 4 client threads sharing the mix, full serving stack.
ModeResult RunServedMode(const Config& config, Catalog* catalog,
                         const CostModel* model,
                         const std::vector<MacroQuery>& mix,
                         const std::map<std::string, Digest>& oracle,
                         const Observability& obs, uint64_t* slow_entries,
                         int* peak_running) {
  ServingEngine::Options options;
  options.serve.machine = MachineConfig::PaperConfig();
  options.serve.max_concurrent = 4;
  options.serve.max_queue_depth = 256;
  options.serve.obs = obs;
  options.buffer_pool_frames = 256;
  options.slow_query_seconds = config.slow_ms / 1e3;
  ServingEngine engine(catalog, MachineConfig::PaperConfig(), model,
                       std::move(options));

  ModeResult result;
  result.name = "served";
  std::mutex mutex;
  std::vector<double> latencies_ms;
  std::map<std::string, double> sum_ms;
  std::map<std::string, uint64_t> runs;
  std::atomic<uint64_t> executed{0};
  std::atomic<uint64_t> diffs{0};

  const int kClients = 4;
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto session = engine.OpenSession();
      for (int rep = 0; rep < config.reps; ++rep) {
        for (size_t i = 0; i < mix.size(); ++i) {
          const MacroQuery& q = mix[(t + i) % mix.size()];
          const auto q0 = Clock::now();
          StatusOr<SqlResult> r = session->Execute(q.sql);
          const double ms = 1e3 * SecondsSince(q0);
          executed.fetch_add(1);
          if (!r.ok() || !(DigestRows(*r) == oracle.at(q.name))) {
            diffs.fetch_add(1);
            continue;
          }
          std::lock_guard<std::mutex> lock(mutex);
          latencies_ms.push_back(ms);
          sum_ms[q.name] += ms;
          ++runs[q.name];
          auto [it, fresh] = result.per_query_best_ms.emplace(q.name, ms);
          if (!fresh && ms < it->second) it->second = ms;
        }
      }
      engine.CloseSession(session);
    });
  }
  for (std::thread& t : threads) t.join();
  result.total_seconds = SecondsSince(t0);

  result.executed = executed.load();
  result.diffs = diffs.load();
  result.throughput_qps = result.total_seconds > 0
                              ? static_cast<double>(result.executed) /
                                    result.total_seconds
                              : 0.0;
  result.latency_ms = ExactPercentiles(latencies_ms);
  for (const auto& [q, total] : sum_ms)
    result.per_query_mean_ms[q] = total / static_cast<double>(runs[q]);
  *slow_entries = engine.slow_query_log().size();
  *peak_running = engine.scheduler().peak_running();
  return result;
}

/// The "tracing compiled in but disabled" tax: serial mix with no obs
/// bundle vs a bundle whose sinks are null, arms interleaved per rep and
/// compared on min-of-reps totals (robust to one-off scheduling noise).
void MeasureOverhead(SqlEngine* engine, const std::vector<MacroQuery>& mix,
                     int reps, double* plain_seconds, double* disabled_seconds,
                     double* median_ratio) {
  auto run_arm = [&](bool attach_disabled_obs) {
    ExecContext ctx;
    if (attach_disabled_obs) ctx.obs = Observability{nullptr, nullptr};
    const auto t0 = Clock::now();
    // Three passes per draw: a bigger quantum keeps clock granularity and
    // per-query jitter out of a percent-level comparison.
    for (int pass = 0; pass < 3; ++pass) {
      for (const MacroQuery& q : mix) {
        StatusOr<SqlResult> r = engine->Execute(q.sql, ctx);
        if (!r.ok()) std::fprintf(stderr, "overhead arm failed\n");
      }
    }
    return SecondsSince(t0);
  };
  *plain_seconds = 1e100;
  *disabled_seconds = 1e100;
  // More arm pairs than the mode reps: the gate on this ratio is tight
  // (2%), so the estimators need more draws to converge under scheduler
  // noise. Each interleaved pair also yields a ratio sample; the median of
  // those is a second overhead estimator robust to asymmetric outliers.
  std::vector<double> ratios;
  for (int rep = 0; rep < std::max(9, reps); ++rep) {
    const double plain = run_arm(false);
    const double disabled = run_arm(true);
    *plain_seconds = std::min(*plain_seconds, plain);
    *disabled_seconds = std::min(*disabled_seconds, disabled);
    if (plain > 0) ratios.push_back(disabled / plain);
  }
  std::sort(ratios.begin(), ratios.end());
  *median_ratio = ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
}

int Run(int argc, char** argv) {
  BenchObs bench_obs(&argc, argv);
  Config config;
  std::string dist_name = "uniform";
  for (int i = 1; i < argc; ++i) {
    BenchFlagDouble(argv[i], "--scale=", &config.scale);
    BenchFlagString(argv[i], "--dist=", &dist_name);
    BenchFlagInt(argv[i], "--reps=", &config.reps);
    BenchFlagDouble(argv[i], "--slow-ms=", &config.slow_ms);
    BenchFlagString(argv[i], "--out=", &config.out_path);
  }
  StatusOr<MacroDistribution> dist = ParseMacroDistribution(dist_name);
  if (!dist.ok()) {
    std::fprintf(stderr, "%s\n", dist.status().ToString().c_str());
    return 1;
  }
  config.distribution = *dist;

  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  CostModel model;
  MacroWorkloadOptions workload;
  workload.scale = config.scale;
  workload.distribution = config.distribution;
  Status built = BuildMacroTables(&catalog, workload);
  if (!built.ok()) {
    std::fprintf(stderr, "build tables: %s\n", built.ToString().c_str());
    return 1;
  }
  const std::vector<MacroQuery>& mix = MacroQueryMix();
  std::vector<MacroQuery> scan_heavy = MacroMix("scan_heavy").value();

  std::printf("== bench_macro (scale=%.2f dist=%s reps=%d)\n", config.scale,
              MacroDistributionName(config.distribution), config.reps);
  for (const char* t : {"lineitem", "orders", "part", "customer"})
    std::printf("  %-9s %8llu rows\n", t,
                static_cast<unsigned long long>(
                    MacroTableRows(t, config.scale)));

  // Serial oracle pass: digests every mode must reproduce.
  SqlEngine engine(&catalog, MachineConfig::PaperConfig(), &model);
  std::map<std::string, Digest> oracle;
  for (const MacroQuery& q : mix) {
    StatusOr<SqlResult> r = engine.Execute(q.sql);
    if (!r.ok()) {
      std::fprintf(stderr, "oracle %s: %s\n", q.name.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    oracle[q.name] = DigestRows(*r);
  }

  DiskArray spill_array(4, DiskMode::kInstant);
  std::vector<ModeResult> modes;
  modes.push_back(RunMode("serial", config, mix, oracle,
                          [&](const std::string& sql) {
                            return engine.Execute(sql);
                          }));
  modes.push_back(RunMode("vectorized", config, mix, oracle,
                          [&](const std::string& sql) {
                            ExecContext ctx;
                            ctx.vectorized = true;
                            return engine.Execute(sql, ctx);
                          }));
  modes.push_back(RunMode("spill", config, mix, oracle,
                          [&](const std::string& sql) {
                            ExecContext ctx;
                            ctx.spill.temp_array = &spill_array;
                            ctx.spill.memory_tuples = 256;
                            return engine.Execute(sql, ctx);
                          }));
  modes.push_back(RunMode("parallel", config, mix, oracle,
                          [&](const std::string& sql) {
                            MasterOptions master;
                            master.max_slots = 4;
                            return engine.ExecuteParallel(sql, master);
                          }));
  uint64_t slow_entries = 0;
  int peak_running = 0;
  modes.push_back(RunServedMode(config, &catalog, &model, mix, oracle,
                                bench_obs.obs(), &slow_entries,
                                &peak_running));

  // Speedups compare each mode's best-of-reps cost for one pass over the
  // mix against the serial engine's; best-of is one-sided against
  // scheduling noise, and per-mix normalization makes the ratio
  // indifferent to how many clients the served mode ran.
  const double serial_best = modes[0].best_total_seconds();
  uint64_t total_diffs = 0, total_queries = 0;
  for (const ModeResult& m : modes) {
    total_diffs += m.diffs;
    total_queries += m.executed;
  }
  for (ModeResult& m : modes) {
    const double mode_best = m.best_total_seconds();
    m.speedup_vs_serial = mode_best > 0 ? serial_best / mode_best : 0.0;
    std::printf(
        "%-10s %5llu queries in %6.3fs  %7.1f q/s  p50=%.2fms p95=%.2fms "
        "p99=%.2fms  speedup=%.2fx  diffs=%llu\n",
        m.name.c_str(), static_cast<unsigned long long>(m.executed),
        m.total_seconds, m.throughput_qps, m.latency_ms.p50, m.latency_ms.p95,
        m.latency_ms.p99, m.speedup_vs_serial,
        static_cast<unsigned long long>(m.diffs));
  }

  // Lifecycle span breakdown of the served phase, from the recorder.
  std::map<std::string, PhaseBreakdown> breakdown =
      SpanBreakdown(bench_obs.recorder()->snapshot());
  std::map<std::string, std::string> sql_to_name;
  for (const MacroQuery& q : mix) sql_to_name[q.sql] = q.name;
  double coverage_min = 1.0, coverage_sum = 0.0;
  uint64_t covered = 0;
  for (const auto& [sql, b] : breakdown) {
    coverage_min = std::min(coverage_min, b.coverage_min);
    coverage_sum += b.coverage_sum;
    covered += b.queries;
  }
  const double coverage_mean =
      covered > 0 ? coverage_sum / static_cast<double>(covered) : 0.0;
  std::printf(
      "served spans: %llu queries traced, phase coverage min=%.4f "
      "mean=%.4f, %llu slow-query log entries, peak running=%d\n",
      static_cast<unsigned long long>(covered), coverage_min, coverage_mean,
      static_cast<unsigned long long>(slow_entries), peak_running);

  double plain_seconds = 0, disabled_seconds = 0, median_ratio = 1.0;
  MeasureOverhead(&engine, scan_heavy, config.reps, &plain_seconds,
                  &disabled_seconds, &median_ratio);
  const double pct_min_totals =
      plain_seconds > 0
          ? 100.0 * (disabled_seconds - plain_seconds) / plain_seconds
          : 0.0;
  const double pct_median = 100.0 * (median_ratio - 1.0);
  // True overhead is one pointer test; both estimators bound it from
  // above with independent noise, so gate on the tighter bound.
  const double overhead_percent = std::min(pct_min_totals, pct_median);
  std::printf(
      "tracing overhead (disabled): %.2f%% (min-totals %.2f%%, "
      "median %.2f%%; %.4fs -> %.4fs)\n",
      overhead_percent, pct_min_totals, pct_median, plain_seconds,
      disabled_seconds);

  if (!config.out_path.empty()) {
    FILE* f = std::fopen(config.out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", config.out_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\"scale\":%.6g,\"distribution\":\"%s\",\"reps\":%d,"
                 "\"correctness\":{\"queries\":%llu,\"diffs\":%llu},"
                 "\"checksums\":{",
                 config.scale, MacroDistributionName(config.distribution),
                 config.reps,
                 static_cast<unsigned long long>(total_queries),
                 static_cast<unsigned long long>(total_diffs));
    bool first = true;
    for (const auto& [name, digest] : oracle) {
      std::fprintf(f, "%s\"%s\":{\"rows\":%llu,\"checksum\":%llu}",
                   first ? "" : ",", name.c_str(),
                   static_cast<unsigned long long>(digest.rows),
                   static_cast<unsigned long long>(digest.checksum));
      first = false;
    }
    std::fprintf(f, "},\"modes\":[");
    for (size_t i = 0; i < modes.size(); ++i) {
      const ModeResult& m = modes[i];
      std::fprintf(f,
                   "%s{\"name\":\"%s\",\"executed\":%llu,\"diffs\":%llu,"
                   "\"total_seconds\":%.6f,\"throughput_qps\":%.2f,"
                   "\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f,"
                   "\"speedup_vs_serial\":%.4f,\"per_query_mean_ms\":{",
                   i == 0 ? "" : ",", m.name.c_str(),
                   static_cast<unsigned long long>(m.executed),
                   static_cast<unsigned long long>(m.diffs), m.total_seconds,
                   m.throughput_qps, m.latency_ms.p50, m.latency_ms.p95,
                   m.latency_ms.p99, m.speedup_vs_serial);
      bool first_q = true;
      for (const auto& [q, ms] : m.per_query_mean_ms) {
        std::fprintf(f, "%s\"%s\":%.4f", first_q ? "" : ",", q.c_str(), ms);
        first_q = false;
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f,
                 "],\"served\":{\"peak_running\":%d,\"slow_query_entries\":"
                 "%llu,\"span_coverage_min\":%.6f,\"span_coverage_mean\":"
                 "%.6f,\"span_breakdown\":[",
                 peak_running, static_cast<unsigned long long>(slow_entries),
                 coverage_min, coverage_mean);
    first = true;
    for (const auto& [sql, b] : breakdown) {
      auto it = sql_to_name.find(sql);
      const std::string name = it != sql_to_name.end() ? it->second : sql;
      std::fprintf(f,
                   "%s{\"query\":\"%s\",\"runs\":%llu,\"total_ms\":%.4f,"
                   "\"admission_ms\":%.4f,\"queue_wait_ms\":%.4f,"
                   "\"execute_ms\":%.4f,\"drain_ms\":%.4f}",
                   first ? "" : ",", name.c_str(),
                   static_cast<unsigned long long>(b.queries), b.total_ms,
                   b.admission_ms, b.queue_ms, b.exec_ms, b.drain_ms);
      first = false;
    }
    std::fprintf(f,
                 "]},\"overhead\":{\"plain_seconds\":%.6f,"
                 "\"disabled_obs_seconds\":%.6f,\"percent\":%.4f,"
                 "\"percent_min_totals\":%.4f,\"percent_median\":%.4f}}\n",
                 plain_seconds, disabled_seconds, overhead_percent,
                 pct_min_totals, pct_median);
    std::fclose(f);
    std::printf("wrote %s\n", config.out_path.c_str());
  }

  bench_obs.Finish();
  return total_diffs == 0 ? 0 : 1;
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) { return xprs::Run(argc, argv); }
