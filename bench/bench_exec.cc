// Tuple-at-a-time vs vectorized (batch-at-a-time) executor throughput.
//
// Runs three CPU-bound workloads (kInstant disk, so decode/eval dominates)
// through ExecutePlanSequential and ExecutePlanVectorized and reports
// input-rows-per-second for each engine plus the speedup. Aggregate roots
// keep result materialization out of the measurement: the comparison is
// scan decode + predicate eval + join/aggregate work, which is where the
// batch path amortizes per-tuple virtual calls, Value materialization and
// profiler/cancellation polls. scripts/ci.sh runs this with --out= and
// asserts the scan+filter and hash-join speedups stay >= 2x.
//
//   bench_exec [--rows=N] [--reps=N] [--out=file.json]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "exec/executor.h"
#include "exec/plan.h"
#include "storage/catalog.h"

namespace xprs {
namespace {

struct WorkloadResult {
  std::string name;
  uint64_t input_rows = 0;
  uint64_t result_rows = 0;
  double tuple_rows_per_sec = 0;
  double vectorized_rows_per_sec = 0;
  double speedup = 0;
};

double BestRowsPerSec(const PlanNode& plan, const ExecContext& ctx,
                      uint64_t input_rows, int reps, bool vectorized,
                      uint64_t* result_rows) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto rows = vectorized ? ExecutePlanVectorized(plan, ctx)
                           : ExecutePlanSequential(plan, ctx);
    auto stop = std::chrono::steady_clock::now();
    if (!rows.ok()) {
      std::fprintf(stderr, "run failed: %s\n", rows.status().ToString().c_str());
      std::exit(1);
    }
    *result_rows = rows->size();
    double secs = std::chrono::duration<double>(stop - start).count();
    if (secs <= 0) secs = 1e-9;
    double rate = static_cast<double>(input_rows) / secs;
    if (rate > best) best = rate;
  }
  return best;
}

WorkloadResult RunWorkload(const std::string& name, const PlanNode& plan,
                           uint64_t input_rows, int reps) {
  WorkloadResult r;
  r.name = name;
  r.input_rows = input_rows;
  ExecContext ctx;
  r.tuple_rows_per_sec = BestRowsPerSec(plan, ctx, input_rows, reps,
                                        /*vectorized=*/false, &r.result_rows);
  uint64_t vec_rows = 0;
  r.vectorized_rows_per_sec =
      BestRowsPerSec(plan, ctx, input_rows, reps, /*vectorized=*/true,
                     &vec_rows);
  if (vec_rows != r.result_rows) {
    std::fprintf(stderr, "%s: result mismatch (tuple=%llu vectorized=%llu)\n",
                 name.c_str(), static_cast<unsigned long long>(r.result_rows),
                 static_cast<unsigned long long>(vec_rows));
    std::exit(1);
  }
  r.speedup = r.vectorized_rows_per_sec / r.tuple_rows_per_sec;
  return r;
}

int Run(int argc, char** argv) {
  int rows = 200000;
  int reps = 3;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    BenchFlagInt(argv[i], "--rows=", &rows);
    BenchFlagInt(argv[i], "--reps=", &reps);
    BenchFlagString(argv[i], "--out=", &out_path);
  }

  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  Table* big = catalog.CreateTable("big", Schema::PaperSchema()).value();
  for (int i = 0; i < rows; ++i) {
    Status st = big->file().Append(
        Tuple({Value(int32_t{i % 10000}),
               Value("payload-" + std::to_string(i % 97))}));
    if (!st.ok()) {
      std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (!big->file().Flush().ok() || !big->ComputeStats().ok()) return 1;

  const int small_rows = rows / 10;
  Table* small = catalog.CreateTable("small", Schema::PaperSchema()).value();
  for (int i = 0; i < small_rows; ++i) {
    Status st = small->file().Append(
        Tuple({Value(int32_t{i % 10000}),
               Value("dim-" + std::to_string(i % 89))}));
    if (!st.ok()) return 1;
  }
  if (!small->file().Flush().ok() || !small->ComputeStats().ok()) return 1;

  std::vector<WorkloadResult> results;

  // 1% selective filter: the scan decodes and evaluates every row, the
  // root materializes almost nothing.
  results.push_back(RunWorkload(
      "scan_filter",
      *MakeSeqScan(big, Predicate::Between(0, 0, 99)),
      static_cast<uint64_t>(rows), reps));

  // Hash join under a count: build small, probe big, no materialization.
  results.push_back(RunWorkload(
      "hash_join_count",
      *MakeAggregate(MakeHashJoin(MakeSeqScan(big, Predicate()),
                                  MakeSeqScan(small, Predicate()), 0, 0),
                     AggFunc::kCount, 0, -1),
      static_cast<uint64_t>(rows + small_rows), reps));

  // Join feeding a grouped sum: exercises the full batch pipeline.
  results.push_back(RunWorkload(
      "join_group_sum",
      *MakeAggregate(MakeHashJoin(MakeSeqScan(big, Predicate()),
                                  MakeSeqScan(small, Predicate()), 0, 0),
                     AggFunc::kSum, 0, 0),
      static_cast<uint64_t>(rows + small_rows), reps));

  std::printf("== bench_exec: tuple vs vectorized (rows=%d, reps=%d)\n", rows,
              reps);
  std::printf("%-18s %14s %14s %8s\n", "workload", "tuple rows/s",
              "vector rows/s", "speedup");
  for (const auto& r : results) {
    std::printf("%-18s %14.0f %14.0f %7.2fx\n", r.name.c_str(),
                r.tuple_rows_per_sec, r.vectorized_rows_per_sec, r.speedup);
  }

  if (!out_path.empty()) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\"rows\":%d,\"reps\":%d,\"workloads\":[", rows, reps);
    for (size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(
          f,
          "%s{\"name\":\"%s\",\"input_rows\":%llu,\"result_rows\":%llu,"
          "\"tuple_rows_per_sec\":%.1f,\"vectorized_rows_per_sec\":%.1f,"
          "\"speedup\":%.3f}",
          i == 0 ? "" : ",", r.name.c_str(),
          static_cast<unsigned long long>(r.input_rows),
          static_cast<unsigned long long>(r.result_rows),
          r.tuple_rows_per_sec, r.vectorized_rows_per_sec, r.speedup);
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) { return xprs::Run(argc, argv); }
