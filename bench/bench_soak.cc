// Chaos-soak harness: the standing overload drill for the serving stack.
//
// A macro workload (parameterized scan / aggregate / join templates whose
// answers are canonicalized against a serial oracle before any fault is
// armed) runs through the ServingEngine for a time-boxed window while a
// fault driver walks a storm timeline:
//
//   baseline   no faults; canon answers, poison-quarantine drill
//   ramp       buffer-pool fetch fault rate climbs linearly to the peak
//   peak       sustained storm; the read breaker opens, the overload
//              controller sheds, spill writes fail too
//   recovery   faults drop to zero; breakers close, the controller steps
//              back down to healthy
//
// The harness asserts the robustness invariants rather than timing them:
// zero result diffs vs the oracle among successful queries, zero leaked
// buffer-pool pins and sessions, the health state machine reaching
// shedding under the storm and returning to healthy after it, and a
// quarantined poison statement fast-rejecting without execution. Results
// land in BENCH_soak.json; scripts/ci.sh runs a time-boxed soak and gates
// on the invariants (EXPERIMENTS.md "Fault-storm recovery curve").
//
//   bench_soak [--rows=N] [--duration-s=S] [--clients=K]
//              [--peak-fault-rate=P] [--seed=S] [--require-shedding=0|1]
//              [--out=file.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_obs.h"
#include "serve/overload.h"
#include "serve/serving_engine.h"
#include "sql/engine.h"
#include "storage/catalog.h"
#include "storage/fault_injector.h"
#include "util/rng.h"
#include "util/str.h"

namespace xprs {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Pool-level injector driving the storm. Fetches of blocks in the poison
// set always fail (the quarantine drill's always-sick table); every other
// fetch fails with the current storm rate. Rates change while queries are
// in flight, so everything is guarded.
class ChaosInjector : public FaultInjector {
 public:
  explicit ChaosInjector(uint64_t seed) : rng_(seed) {}

  void PoisonBlocks(std::set<BlockId> blocks) {
    std::lock_guard<std::mutex> lock(mutex_);
    poison_ = std::move(blocks);
  }
  void SetRate(double rate) {
    rate_.store(rate, std::memory_order_release);
  }
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  Status BeforeFetch(BlockId block) override {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (poison_.count(block) != 0) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return Status::IoError(
            StrFormat("soak: poisoned block %u", block));
      }
      double rate = rate_.load(std::memory_order_acquire);
      if (rate > 0.0 && rng_.NextBool(rate)) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return Status::IoError(
            StrFormat("soak: injected fetch fault on block %u", block));
      }
    }
    return Status::OK();
  }
  Status BeforeRead(BlockId) override { return Status::OK(); }
  Status BeforeWrite(BlockId, size_t*) override { return Status::OK(); }

 private:
  std::mutex mutex_;
  Rng rng_;
  std::set<BlockId> poison_;
  std::atomic<double> rate_{0.0};
  std::atomic<uint64_t> injected_{0};
};

// One parameterized statement with its oracle answer (canonicalized rows).
struct CheckedQuery {
  std::string sql;
  std::multiset<std::string> expected;
};

// The storm timeline, as fractions of --duration-s.
constexpr int kNumPhases = 4;
const char* const kPhaseNames[kNumPhases] = {"baseline", "ramp", "peak",
                                             "recovery"};
const double kPhaseFrac[kNumPhases] = {0.2, 0.2, 0.3, 0.3};

struct PhaseStats {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};     // terminal execution failures
  std::atomic<uint64_t> shed{0};       // overload admission sheds
  std::atomic<uint64_t> queue_full{0};
  std::atomic<uint64_t> breaker{0};    // breaker fast-fails
  std::mutex mutex;
  std::vector<double> latencies_ms;
  double seconds = 0.0;
};

double P99(std::vector<double>* latencies) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  return (*latencies)[static_cast<size_t>(0.99 * (latencies->size() - 1))];
}

int Run(int argc, char** argv) {
  int rows = 3000;
  double duration_s = 5.0;
  int clients = 4;
  double peak_fault_rate = 0.6;
  int require_shedding = 1;
  uint64_t seed = BaseSeed(0x50AC0001ULL);
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    BenchFlagInt(argv[i], "--rows=", &rows);
    BenchFlagDouble(argv[i], "--duration-s=", &duration_s);
    BenchFlagInt(argv[i], "--clients=", &clients);
    BenchFlagDouble(argv[i], "--peak-fault-rate=", &peak_fault_rate);
    BenchFlagInt(argv[i], "--require-shedding=", &require_shedding);
    std::string seed_str;
    if (BenchFlagString(argv[i], "--seed=", &seed_str))
      seed = std::strtoull(seed_str.c_str(), nullptr, 10);
    BenchFlagString(argv[i], "--out=", &out_path);
  }
  std::printf("== bench_soak (rows=%d, duration=%.1fs, clients=%d, "
              "peak=%.2f, seed=%llu)\n",
              rows, duration_s, clients, peak_fault_rate,
              static_cast<unsigned long long>(seed));

  // ---- workload tables (plus the always-sick poison table) ----
  DiskArray array(4, DiskMode::kInstant);
  Catalog catalog(&array);
  CostModel model;

  Table* orders = catalog.CreateTable("orders", Schema::PaperSchema()).value();
  for (int i = 0; i < rows; ++i) {
    if (!orders->file()
             .Append(Tuple({Value(int32_t{i % 100}),
                            Value("o" + std::to_string(i % 37))}))
             .ok())
      return 1;
  }
  if (!orders->file().Flush().ok() || !orders->BuildIndex(0).ok() ||
      !orders->ComputeStats().ok())
    return 1;
  Table* custs = catalog.CreateTable("custs", Schema::PaperSchema()).value();
  for (int i = 0; i < rows / 10; ++i) {
    if (!custs->file()
             .Append(Tuple({Value(int32_t{i % 100}),
                            Value("c" + std::to_string(i % 23))}))
             .ok())
      return 1;
  }
  if (!custs->file().Flush().ok() || !custs->BuildIndex(0).ok() ||
      !custs->ComputeStats().ok())
    return 1;
  Table* cursed = catalog.CreateTable("cursed", Schema::PaperSchema()).value();
  for (int i = 0; i < 64; ++i) {
    if (!cursed->file()
             .Append(Tuple({Value(int32_t{i}), Value(std::string("x"))}))
             .ok())
      return 1;
  }
  if (!cursed->file().Flush().ok() || !cursed->ComputeStats().ok()) return 1;

  // ---- oracle canon BEFORE any fault is armed ----
  // Parameterized templates spread the workload over many distinct
  // statement texts so the poison threshold (keyed by text) is never
  // crossed by an honest query that merely kept meeting the storm.
  std::vector<CheckedQuery> mix;
  {
    SqlEngine oracle(&catalog, MachineConfig::PaperConfig(), &model);
    std::vector<std::string> texts;
    for (int lo = 0; lo < 80; lo += 10) {
      texts.push_back(StrFormat(
          "SELECT * FROM custs WHERE a BETWEEN %d AND %d", lo, lo + 19));
      texts.push_back(StrFormat(
          "SELECT count(a) FROM orders WHERE a >= %d", lo));
      texts.push_back(StrFormat(
          "SELECT sum(a) FROM orders WHERE a BETWEEN %d AND %d", lo,
          lo + 30));
      texts.push_back(StrFormat(
          "SELECT o.a, c.b FROM orders o, custs c WHERE o.a = c.a AND "
          "c.a < %d", lo + 10));
    }
    for (const std::string& sql : texts) {
      auto r = oracle.Execute(sql);
      if (!r.ok()) {
        std::fprintf(stderr, "oracle failed on %s: %s\n", sql.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
      CheckedQuery q;
      q.sql = sql;
      for (const Tuple& t : r->rows) q.expected.insert(t.ToString());
      mix.push_back(std::move(q));
    }
  }

  // ---- serving engine tuned so the state machine is visible in seconds --
  ServingEngine::Options options;
  options.serve.machine = MachineConfig::PaperConfig();
  options.serve.max_concurrent = 4;
  options.serve.max_queue_depth = 32;
  options.serve.memory_pages_budget = 512.0;
  options.serve.overload.window = 32;
  options.serve.overload.min_samples = 8;
  options.serve.overload.min_dwell_seconds = 0.05;
  options.serve.overload.recovery_clean_evals = 4;
  options.buffer_pool_frames = 128;
  options.query_retry.max_attempts = 3;
  options.query_retry.initial_backoff_ms = 1;
  options.query_retry.max_backoff_ms = 8;
  options.retry_jitter_seed = seed;
  options.poison_failures = 4;
  options.breaker.failure_threshold = 5;
  options.breaker.open_seconds = 0.05;
  ServingEngine engine(&catalog, MachineConfig::PaperConfig(), &model,
                       std::move(options));

  ChaosInjector chaos(seed ^ 0xC4A05ULL);
  std::set<BlockId> cursed_blocks;
  for (uint32_t p = 0; p < cursed->file().num_pages(); ++p)
    cursed_blocks.insert(cursed->file().BlockOf(p).value());
  chaos.PoisonBlocks(std::move(cursed_blocks));
  engine.pool()->SetFaultInjector(&chaos);
  // Spill domain: degraded queries write runs to the spill array; a
  // seeded write-fault script there exercises the spill_io breaker.
  ScriptedFaultInjector spill_faults;
  engine.spill_array()->SetFaultInjector(&spill_faults);

  // ---- poison-quarantine drill (baseline, before the storm) ----
  const std::string poison_sql = "SELECT * FROM cursed";
  bool poison_quarantined = false;
  bool poison_fast_reject = false;
  {
    auto drill = engine.OpenSession({/*priority=*/0, 1.0, "poison-drill"});
    QueryOptions qo;
    qo.replay_seed = seed;
    for (int i = 0; i < 20 && !engine.poison_log().IsQuarantined(poison_sql);
         ++i) {
      (void)drill->Execute(poison_sql, qo);
      // A healthy statement between drill shots keeps the read breaker's
      // consecutive-failure count from opening it during baseline.
      (void)drill->Execute(mix[i % mix.size()].sql);
    }
    poison_quarantined = engine.poison_log().IsQuarantined(poison_sql);
    if (poison_quarantined) {
      auto rejected = drill->Submit(poison_sql);
      poison_fast_reject = !rejected.ok() &&
                           PoisonLog::IsPoisonReject(rejected.status());
    }
    engine.CloseSession(drill);
  }
  std::printf("poison drill: quarantined=%d fast_reject=%d\n",
              poison_quarantined ? 1 : 0, poison_fast_reject ? 1 : 0);

  // ---- the soak ----
  PhaseStats phases[kNumPhases];
  std::atomic<int> phase_index{0};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> total_submitted{0};
  std::atomic<uint64_t> diffs{0};

  const auto t0 = Clock::now();
  std::thread driver([&] {
    // Walks the timeline, re-arming the injectors at phase boundaries and
    // every 20 ms during the ramp.
    double edges[kNumPhases + 1];
    edges[0] = 0.0;
    for (int p = 0; p < kNumPhases; ++p)
      edges[p + 1] = edges[p] + kPhaseFrac[p] * duration_s;
    while (!done.load()) {
      double t = SecondsSince(t0);
      int p = kNumPhases - 1;
      while (p > 0 && t < edges[p]) --p;
      phase_index.store(p);
      double rate = 0.0;
      if (p == 1)  // ramp
        rate = peak_fault_rate * (t - edges[1]) / (edges[2] - edges[1]);
      else if (p == 2)  // peak
        rate = peak_fault_rate;
      chaos.SetRate(rate);
      ScriptedFaultInjector::Script spill_script;
      spill_script.write_fault_rate = rate * 0.5;
      spill_script.short_write_bytes = 0;
      spill_faults.Arm(spill_script, seed ^ (0x5B1ULL + p));
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    chaos.SetRate(0.0);
    spill_faults.Disarm();
  });

  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      // One client per thread; client 0 runs above the shed floor so work
      // keeps flowing (and the recovery window keeps filling) even while
      // the controller sheds default-priority traffic.
      auto session = engine.OpenSession(
          {/*priority=*/c == 0 ? 2 : 0, 1.0, "soak-" + std::to_string(c)});
      Rng rng(seed ^ (0xC11E57ULL + c));
      while (SecondsSince(t0) < duration_s) {
        const CheckedQuery& q = mix[rng.NextUint64(mix.size())];
        int p = phase_index.load();
        PhaseStats& stats = phases[p];
        stats.submitted.fetch_add(1);
        total_submitted.fetch_add(1);
        const auto q0 = Clock::now();
        auto result = session->Execute(q.sql);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() - q0)
                .count();
        if (result.ok()) {
          stats.completed.fetch_add(1);
          std::multiset<std::string> canon;
          for (const Tuple& t : result->rows) canon.insert(t.ToString());
          if (canon != q.expected) diffs.fetch_add(1);
          std::lock_guard<std::mutex> lock(stats.mutex);
          stats.latencies_ms.push_back(ms);
        } else if (OverloadController::IsOverloadShed(result.status())) {
          stats.shed.fetch_add(1);
          // Shed clients back off instead of hammering admission.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        } else if (QueryScheduler::IsAdmissionReject(result.status())) {
          stats.queue_full.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        } else if (CircuitBreaker::IsBreakerOpen(result.status())) {
          stats.breaker.fetch_add(1);
        } else {
          stats.failed.fetch_add(1);
        }
      }
      engine.CloseSession(session);
    });
  }
  for (std::thread& w : workers) w.join();
  done.store(true);
  driver.join();

  // ---- settle: give the controller its dwell to finish stepping down ----
  {
    auto settle = engine.OpenSession({/*priority=*/2, 1.0, "settle"});
    for (int i = 0;
         i < 200 && engine.overload().state() != HealthState::kHealthy;
         ++i) {
      (void)settle->Execute(mix[i % mix.size()].sql);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    engine.CloseSession(settle);
  }
  if (!engine.Drain().ok()) return 1;

  OverloadController& overload = engine.overload();
  const bool reached_shedding = overload.reached(HealthState::kShedding);
  const bool reached_degraded = overload.reached(HealthState::kDegraded);
  const bool recovered = overload.state() == HealthState::kHealthy;
  const uint64_t leaked_pins =
      engine.pool() != nullptr ? engine.pool()->PinnedFrames() : 0;
  const uint64_t leaked_sessions = engine.num_open_sessions();
  std::vector<OverloadTransition> transitions = overload.transitions();

  uint64_t completed = 0, failed = 0, shed = 0, queue_full = 0, breaker = 0;
  for (int p = 0; p < kNumPhases; ++p) {
    phases[p].seconds = kPhaseFrac[p] * duration_s;
    completed += phases[p].completed.load();
    failed += phases[p].failed.load();
    shed += phases[p].shed.load();
    queue_full += phases[p].queue_full.load();
    breaker += phases[p].breaker.load();
    std::lock_guard<std::mutex> lock(phases[p].mutex);
    std::printf(
        "%-9s %5.1fs: %6llu ok %5llu failed %5llu shed %5llu full "
        "%5llu breaker  p99=%.1fms\n",
        kPhaseNames[p], phases[p].seconds,
        static_cast<unsigned long long>(phases[p].completed.load()),
        static_cast<unsigned long long>(phases[p].failed.load()),
        static_cast<unsigned long long>(phases[p].shed.load()),
        static_cast<unsigned long long>(phases[p].queue_full.load()),
        static_cast<unsigned long long>(phases[p].breaker.load()),
        P99(&phases[p].latencies_ms));
  }
  std::printf(
      "overload: reached shedding=%d recovered=%d transitions=%zu "
      "sheds=%llu preemptions=%llu\n",
      reached_shedding ? 1 : 0, recovered ? 1 : 0, transitions.size(),
      static_cast<unsigned long long>(overload.sheds()),
      static_cast<unsigned long long>(engine.scheduler().preemptions()));
  std::printf("diffs=%llu leaked_pins=%llu leaked_sessions=%llu\n",
              static_cast<unsigned long long>(diffs.load()),
              static_cast<unsigned long long>(leaked_pins),
              static_cast<unsigned long long>(leaked_sessions));

  if (!out_path.empty()) {
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"seed\":%llu,\"duration_s\":%.2f,\"clients\":%d,"
        "\"peak_fault_rate\":%.2f,\"faults_injected\":%llu,"
        "\"submitted\":%llu,\"completed\":%llu,\"failed\":%llu,"
        "\"shed\":%llu,\"queue_full\":%llu,\"breaker_fast_fails\":%llu,"
        "\"diffs\":%llu,\"leaked_pins\":%llu,\"leaked_sessions\":%llu,"
        "\"preemptions\":%llu,",
        static_cast<unsigned long long>(seed), duration_s, clients,
        peak_fault_rate, static_cast<unsigned long long>(chaos.injected()),
        static_cast<unsigned long long>(total_submitted.load()),
        static_cast<unsigned long long>(completed),
        static_cast<unsigned long long>(failed),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(queue_full),
        static_cast<unsigned long long>(breaker),
        static_cast<unsigned long long>(diffs.load()),
        static_cast<unsigned long long>(leaked_pins),
        static_cast<unsigned long long>(leaked_sessions),
        static_cast<unsigned long long>(engine.scheduler().preemptions()));
    std::fprintf(
        f,
        "\"overload\":{\"reached_degraded\":%s,\"reached_shedding\":%s,"
        "\"recovered\":%s,\"final_state\":\"%s\",\"sheds\":%llu,"
        "\"transitions\":[",
        reached_degraded ? "true" : "false",
        reached_shedding ? "true" : "false", recovered ? "true" : "false",
        HealthStateName(overload.state()),
        static_cast<unsigned long long>(overload.sheds()));
    for (size_t i = 0; i < transitions.size(); ++i) {
      const OverloadTransition& t = transitions[i];
      std::fprintf(f, "%s{\"t_s\":%.3f,\"from\":\"%s\",\"to\":\"%s\","
                      "\"reason\":\"%s\"}",
                   i == 0 ? "" : ",", t.t_seconds, HealthStateName(t.from),
                   HealthStateName(t.to), JsonEscape(t.reason).c_str());
    }
    std::fprintf(
        f,
        "]},\"breakers\":{\"storage_read\":{\"opened\":%llu,"
        "\"fast_fails\":%llu},\"spill_io\":{\"opened\":%llu,"
        "\"fast_fails\":%llu}},"
        "\"poison\":{\"quarantined\":%s,\"fast_reject\":%s,"
        "\"entries\":%zu},\"phases\":[",
        static_cast<unsigned long long>(engine.read_breaker().times_opened()),
        static_cast<unsigned long long>(engine.read_breaker().fast_fails()),
        static_cast<unsigned long long>(engine.spill_breaker().times_opened()),
        static_cast<unsigned long long>(engine.spill_breaker().fast_fails()),
        poison_quarantined ? "true" : "false",
        poison_fast_reject ? "true" : "false", engine.poison_log().size());
    for (int p = 0; p < kNumPhases; ++p) {
      std::lock_guard<std::mutex> lock(phases[p].mutex);
      std::fprintf(
          f,
          "%s{\"name\":\"%s\",\"seconds\":%.2f,\"submitted\":%llu,"
          "\"completed\":%llu,\"failed\":%llu,\"shed\":%llu,"
          "\"queue_full\":%llu,\"breaker\":%llu,\"p99_ms\":%.2f}",
          p == 0 ? "" : ",", kPhaseNames[p], phases[p].seconds,
          static_cast<unsigned long long>(phases[p].submitted.load()),
          static_cast<unsigned long long>(phases[p].completed.load()),
          static_cast<unsigned long long>(phases[p].failed.load()),
          static_cast<unsigned long long>(phases[p].shed.load()),
          static_cast<unsigned long long>(phases[p].queue_full.load()),
          static_cast<unsigned long long>(phases[p].breaker.load()),
          P99(&phases[p].latencies_ms));
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  // ---- gates (exit non-zero so CI catches a broken invariant) ----
  int rc = 0;
  auto gate = [&rc](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "SOAK GATE FAILED: %s\n", what);
      rc = 1;
    }
  };
  gate(diffs.load() == 0, "result diffs vs serial oracle");
  gate(leaked_pins == 0, "buffer-pool pins leaked");
  gate(leaked_sessions == 0, "sessions leaked");
  gate(poison_quarantined, "poison statement never quarantined");
  gate(poison_fast_reject, "quarantined statement not fast-rejected");
  if (require_shedding != 0) {
    gate(reached_shedding, "storm never drove the controller to shedding");
    gate(recovered, "controller did not recover to healthy");
  }
  return rc;
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) { return xprs::Run(argc, argv); }
