// Regenerates the §4 optimizer study (no figure in the paper; the section
// claims):
//   1. in a single-user environment, bushy plans with inter-operation
//      parallelism can beat the best left-deep plan once cost is measured
//      as parcost(p, n) = T_n(F(p));
//   2. the parcost-optimal plan can differ from the seqcost-optimal one
//      (local pruning is unsound);
//   3. in a multi-user environment, intra-only-optimized plans from
//      different queries reach full utilization through the scheduler.
// Uses physical relations over the simulated disk array; parcost is the
// elapsed time of the fragment schedule under the adaptive algorithm.

#include <cstdio>

#include "bench_obs.h"
#include "opt/two_phase.h"
#include "sim/fluid_sim.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/relations.h"

namespace xprs {
namespace {

struct Database {
  std::unique_ptr<DiskArray> array;
  std::unique_ptr<Catalog> catalog;
  std::vector<Table*> tables;
};

Database BuildDatabase() {
  Database db;
  db.array = std::make_unique<DiskArray>(4, DiskMode::kInstant);
  db.catalog = std::make_unique<Catalog>(db.array.get());
  Rng rng(TestSeed(77));
  struct Spec {
    const char* name;
    uint64_t tuples;
    double rate;  // io rate of a full sequential scan
  } specs[] = {
      {"fat_big", 900, 65.0},     // wide tuples: io-heavy scans
      {"fat_mid", 500, 55.0},     //
      {"thin_big", 4000, 7.0},    // narrow tuples: cpu-heavy scans
      {"thin_mid", 2500, 10.0},   //
      {"small", 400, 25.0},       //
  };
  for (const auto& s : specs) {
    int width = TextWidthForIoRate(s.rate);
    auto t = BuildRelation(db.catalog.get(), s.name, s.tuples, width,
                           /*key_range=*/300, &rng);
    XPRS_CHECK_OK(t.status());
    db.tables.push_back(t.value());
  }
  return db;
}

QuerySpec MakeJoinQuery(const Database& db, std::vector<int> rels) {
  QuerySpec q;
  for (int r : rels) q.relations.push_back({db.tables[r], Predicate()});
  for (size_t i = 0; i + 1 < rels.size(); ++i)
    q.joins.push_back(
        {static_cast<int>(i), 0, static_cast<int>(i + 1), 0});
  return q;
}

void SingleUserStudy(const Database& db) {
  MachineConfig machine = MachineConfig::PaperConfig();
  CostModel model;
  TwoPhaseOptimizer opt(machine, &model);

  std::printf("Single-user optimization (§4): seqcost vs parcost, "
              "left-deep vs bushy:\n");
  TextTable table({"query", "plan strategy", "shape", "seqcost (s)",
                   "parcost (s)", "fragments"});

  struct Case {
    const char* name;
    std::vector<int> rels;
  } cases[] = {
      {"3-way (fat-thin-fat)", {0, 2, 1}},
      {"4-way (mixed)", {0, 2, 1, 3}},
      {"5-way (all)", {0, 2, 1, 3, 4}},
  };

  for (const auto& c : cases) {
    QuerySpec q = MakeJoinQuery(db, c.rels);
    auto ld = opt.Optimize(q, TreeShape::kLeftDeep);
    auto bushy = opt.Optimize(q, TreeShape::kBushy);
    auto pc = opt.OptimizeParCost(q, /*per_subset=*/3);
    XPRS_CHECK_OK(ld.status());
    XPRS_CHECK_OK(bushy.status());
    XPRS_CHECK_OK(pc.status());

    auto add = [&](const char* strategy, const OptimizedQuery& r) {
      table.AddRow({c.name, strategy,
                    IsLeftDeep(*r.plan) ? "left-deep" : "bushy",
                    StrFormat("%.2f", r.seqcost),
                    StrFormat("%.2f", r.parcost),
                    StrFormat("%zu", r.profiles.size())});
    };
    add("best seqcost, left-deep", *ld);
    add("best seqcost, bushy", *bushy);
    add("best parcost (top-3/subset)", *pc);
  }
  std::printf("%s\n", table.ToString().c_str());
}

void MultiUserStudy(const Database& db, BenchObs* bench_obs) {
  MachineConfig machine = MachineConfig::PaperConfig();
  CostModel model;
  TwoPhaseOptimizer opt(machine, &model);

  std::printf(
      "Multi-user mode (§4): intra-only-optimized single-query plans,\n"
      "submitted together — the scheduler pairs fragments across queries:\n");

  // Four single-relation selection queries with mixed io rates (two fat /
  // two thin scans), each optimized independently.
  std::vector<TaskProfile> all;
  TaskId base = 0;
  for (int r : {0, 2, 1, 3}) {
    QuerySpec q;
    q.relations = {{db.tables[r], Predicate()}};
    auto optimized = opt.Optimize(q);
    XPRS_CHECK_OK(optimized.status());
    for (TaskProfile p : optimized->profiles) {
      p.id += base;
      for (auto& d : p.deps) d += base;
      p.query_id = base / 100;
      all.push_back(p);
    }
    base += 100;
  }

  TextTable table({"scheduling", "elapsed (s)", "cpu util", "io util"});
  for (SchedPolicy policy : {SchedPolicy::kIntraOnly,
                             SchedPolicy::kInterWithAdj}) {
    SchedulerOptions so;
    so.policy = policy;
    AdaptiveScheduler sched(machine, so);
    FluidSimulator sim(machine, SimOptions());
    if (policy == SchedPolicy::kInterWithAdj) {
      // The traced representative run: cross-query fragment pairing.
      sched.SetObservability(bench_obs->obs());
      sim.SetObservability(bench_obs->obs());
    }
    SimResult r = sim.Run(&sched, all);
    table.AddRow({SchedPolicyName(policy), StrFormat("%.2f", r.elapsed),
                  StrFormat("%.0f%%", r.cpu_utilization * 100),
                  StrFormat("%.0f%%", r.io_utilization * 100)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void BatchStudy(const Database& db) {
  MachineConfig machine = MachineConfig::PaperConfig();
  CostModel model;
  TwoPhaseOptimizer opt(machine, &model);

  std::printf(
      "Joint multi-query optimization (§5 future-work extension): plans\n"
      "chosen per-query vs chosen against the combined schedule makespan:\n");

  std::vector<QuerySpec> batch = {
      MakeJoinQuery(db, {0, 2}),     // fat-thin
      MakeJoinQuery(db, {1, 3}),     // fat-thin
      MakeJoinQuery(db, {0, 4, 2}),  // 3-way
      MakeJoinQuery(db, {2, 3}),     // thin-thin
  };

  // Baseline: independent best-seqcost plans.
  JoinEnumerator enumerator(&model);
  std::vector<std::unique_ptr<PlanNode>> indep;
  for (const auto& q : batch) {
    auto best = enumerator.BestPlan(q, TreeShape::kBushy);
    XPRS_CHECK_OK(best.status());
    indep.push_back(std::move(best->plan));
  }
  std::vector<const PlanNode*> indep_ptrs;
  for (const auto& p : indep) indep_ptrs.push_back(p.get());
  double indep_makespan = opt.BatchCost(indep_ptrs);

  double joint_makespan = 0.0;
  auto joint = opt.OptimizeBatch(batch, &joint_makespan);
  XPRS_CHECK_OK(joint.status());

  TextTable table({"strategy", "batch makespan (s)"});
  table.AddRow({"independent per-query (seqcost best)",
                StrFormat("%.2f", indep_makespan)});
  table.AddRow({"joint coordinate descent", StrFormat("%.2f", joint_makespan)});
  std::printf("%s\n", table.ToString().c_str());
}

void Run(BenchObs* bench_obs) {
  std::printf("Section 4: optimization of bushy tree plans for parallelism\n\n");
  Database db = BuildDatabase();
  db.array->AttachMetrics(bench_obs->metrics());
  SingleUserStudy(db);
  MultiUserStudy(db, bench_obs);
  BatchStudy(db);
  db.array->PublishMetrics();
  std::printf(
      "reading: parcost < seqcost everywhere (parallelism helps); the\n"
      "parcost-driven choice is never worse than two-phase left-deep and\n"
      "picks bushy shapes when independent IO/CPU fragment pairs exist;\n"
      "in multi-user mode INTER-WITH-ADJ lifts utilization of the same\n"
      "plans without re-optimizing.\n");
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) {
  xprs::BenchObs bench_obs(&argc, argv);
  xprs::Run(&bench_obs);
  bench_obs.Finish();
  return 0;
}
