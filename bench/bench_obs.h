// Shared --trace-out / metrics plumbing for the bench binaries.
//
// Usage:
//   int main(int argc, char** argv) {
//     xprs::BenchObs bench_obs(&argc, argv);   // strips --trace-out=<path>
//     ... attach bench_obs.obs() to one representative run ...
//     bench_obs.Finish();   // writes the Chrome trace, prints metrics JSON
//   }
//
// The flag is stripped from argv so benches that parse their own flags —
// and google-benchmark's Initialize — never see it. Every bench prints one
// "metrics: {...}" JSON line whether or not tracing was requested, so the
// counters are always scrapeable from bench output.

#ifndef XPRS_BENCH_BENCH_OBS_H_
#define XPRS_BENCH_BENCH_OBS_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/obs.h"

namespace xprs {

class BenchObs {
 public:
  BenchObs(int* argc, char** argv) {
    static constexpr char kFlag[] = "--trace-out=";
    const size_t flag_len = std::strlen(kFlag);
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strncmp(argv[i], kFlag, flag_len) == 0) {
        trace_path_ = argv[i] + flag_len;
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
  }

  /// The bundle to hand to the components of the traced run.
  Observability obs() { return {&recorder_, &metrics_}; }
  MetricsRegistry* metrics() { return &metrics_; }
  TraceSink* trace() { return &recorder_; }
  bool tracing_requested() const { return !trace_path_.empty(); }

  /// Writes the trace file (if --trace-out was given) and prints the
  /// metrics snapshot as one "metrics: {...}" line.
  void Finish() {
    if (!trace_path_.empty()) {
      Status st = WriteChromeTrace(trace_path_, recorder_.snapshot());
      if (st.ok()) {
        std::printf("trace: wrote %s (%zu events, %zu dropped)\n",
                    trace_path_.c_str(), recorder_.size(),
                    recorder_.dropped());
      } else {
        std::fprintf(stderr, "trace: %s\n", st.ToString().c_str());
      }
    }
    std::printf("metrics: %s\n", metrics_.DumpJson().c_str());
  }

 private:
  std::string trace_path_;
  MemoryTraceRecorder recorder_;
  MetricsRegistry metrics_;
};

}  // namespace xprs

#endif  // XPRS_BENCH_BENCH_OBS_H_
