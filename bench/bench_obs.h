// Shared --trace-out / --metrics-out / --profile-out plumbing for the
// bench binaries.
//
// Usage:
//   int main(int argc, char** argv) {
//     xprs::BenchObs bench_obs(&argc, argv);   // strips the flags below
//     ... attach bench_obs.obs() to one representative run ...
//     bench_obs.RegisterProfile(result.profile);  // EXPLAIN ANALYZE runs
//     bench_obs.Finish();   // writes trace/metrics/profile files
//   }
//
// Flags (all stripped from argv so benches that parse their own flags —
// and google-benchmark's Initialize — never see them):
//   --trace-out=<file>    Chrome trace JSON of the recorded events
//   --metrics-out=<file>  MetricsRegistry JSON snapshot
//   --profile-out=<file>  QueryProfile JSON of the registered profile
//
// Every bench prints one "metrics: {...}" JSON line whether or not any
// file was requested, so the counters are always scrapeable from output.

#ifndef XPRS_BENCH_BENCH_OBS_H_
#define XPRS_BENCH_BENCH_OBS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "exec/profile.h"
#include "obs/obs.h"

namespace xprs {

// --- shared flag parsing ---------------------------------------------------
//
// Every bench main parses `--name=value` arguments; these helpers are the
// one implementation (BenchObs uses the string one for its own flags).
// Each returns true iff `arg` starts with `flag` (which must include the
// trailing '='), writing the parsed value through `out` on a match.

inline bool BenchFlagString(const char* arg, const char* flag,
                            std::string* out) {
  const size_t len = std::strlen(flag);
  if (std::strncmp(arg, flag, len) != 0) return false;
  *out = arg + len;
  return true;
}

inline bool BenchFlagInt(const char* arg, const char* flag, int* out) {
  std::string value;
  if (!BenchFlagString(arg, flag, &value)) return false;
  *out = std::atoi(value.c_str());
  return true;
}

inline bool BenchFlagDouble(const char* arg, const char* flag, double* out) {
  std::string value;
  if (!BenchFlagString(arg, flag, &value)) return false;
  *out = std::atof(value.c_str());
  return true;
}

/// Comma-separated list of doubles ("--qps=100,400,1200").
inline bool BenchFlagDoubleList(const char* arg, const char* flag,
                                std::vector<double>* out) {
  std::string value;
  if (!BenchFlagString(arg, flag, &value)) return false;
  out->clear();
  const char* p = value.c_str();
  while (*p != '\0') {
    out->push_back(std::atof(p));
    const char* comma = std::strchr(p, ',');
    if (comma == nullptr) break;
    p = comma + 1;
  }
  return true;
}

class BenchObs {
 public:
  BenchObs(int* argc, char** argv) {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (BenchFlagString(argv[i], "--trace-out=", &trace_path_) ||
          BenchFlagString(argv[i], "--metrics-out=", &metrics_path_) ||
          BenchFlagString(argv[i], "--profile-out=", &profile_path_)) {
        continue;
      }
      argv[out++] = argv[i];
    }
    *argc = out;
  }

  /// The bundle to hand to the components of the traced run.
  Observability obs() { return {&recorder_, &metrics_}; }
  MetricsRegistry* metrics() { return &metrics_; }
  TraceSink* trace() { return &recorder_; }
  /// The recorder itself, for benches that post-process the events they
  /// emitted (bench_macro's per-query span breakdown).
  MemoryTraceRecorder* recorder() { return &recorder_; }
  bool tracing_requested() const { return !trace_path_.empty(); }
  bool profile_requested() const { return !profile_path_.empty(); }

  /// Registers the profile --profile-out will dump (the last registration
  /// wins; benches typically register their headline query's profile).
  void RegisterProfile(std::shared_ptr<const QueryProfile> profile) {
    profile_ = std::move(profile);
  }

  /// Writes the requested output files and prints the metrics snapshot as
  /// one "metrics: {...}" line.
  void Finish() {
    if (!trace_path_.empty()) {
      Status st = WriteChromeTrace(trace_path_, recorder_.snapshot());
      if (st.ok()) {
        std::printf("trace: wrote %s (%zu events, %zu dropped)\n",
                    trace_path_.c_str(), recorder_.size(),
                    recorder_.dropped());
      } else {
        std::fprintf(stderr, "trace: %s\n", st.ToString().c_str());
      }
    }
    if (!metrics_path_.empty()) {
      std::ofstream file(metrics_path_, std::ios::trunc);
      if (file.is_open()) {
        file << metrics_.DumpJson() << "\n";
        std::printf("metrics: wrote %s\n", metrics_path_.c_str());
      } else {
        std::fprintf(stderr, "metrics: cannot open %s\n",
                     metrics_path_.c_str());
      }
    }
    if (!profile_path_.empty()) {
      if (profile_ == nullptr) {
        std::fprintf(stderr,
                     "profile: --profile-out given but no profile was "
                     "registered\n");
      } else {
        Status st = profile_->WriteJson(profile_path_);
        if (st.ok()) {
          std::printf("profile: wrote %s\n", profile_path_.c_str());
        } else {
          std::fprintf(stderr, "profile: %s\n", st.ToString().c_str());
        }
      }
    }
    std::printf("metrics: %s\n", metrics_.DumpJson().c_str());
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string profile_path_;
  MemoryTraceRecorder recorder_;
  MetricsRegistry metrics_;
  std::shared_ptr<const QueryProfile> profile_;
};

}  // namespace xprs

#endif  // XPRS_BENCH_BENCH_OBS_H_
