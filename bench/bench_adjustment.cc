// Regenerates Figures 5 and 6 (§2.4) behaviourally: runs the real
// shared-memory adjustment protocols (page partitioning with the maxpage
// rendezvous; range partitioning with interval redistribution) on live
// slave threads, reporting protocol latency, work conservation, and the
// cost of the rendezvous as parallelism changes. Also sweeps the fluid
// simulator's adjustment latency to show how protocol cost eats into the
// Figure 7 gain.

#include <chrono>
#include <cstdio>
#include <functional>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "bench_obs.h"
#include "parallel/page_partition.h"
#include "parallel/range_partition.h"
#include "sched/scheduler.h"
#include "sim/fluid_sim.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/tasks.h"

namespace xprs {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs a page scan with `initial` slaves, fires one adjustment to
// `target`, reports the rendezvous latency and verifies conservation.
void PageProtocolRow(TextTable* table, uint32_t pages, int initial,
                     int target) {
  AdjustablePageScan scan(pages, initial, 12);
  std::mutex mu;
  std::set<uint32_t> taken;
  std::vector<std::thread> threads;
  std::mutex tm;

  std::function<void(int)> spawn = [&](int slot) {
    std::lock_guard<std::mutex> lock(tm);
    threads.emplace_back([&, slot] {
      for (;;) {
        auto p = scan.NextPage(slot);
        if (!p.has_value()) return;
        {
          std::lock_guard<std::mutex> l2(mu);
          taken.insert(*p);
        }
        // Simulated per-page work so the rendezvous has something to wait
        // for (the paper's slaves pause at page boundaries).
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });
  };
  for (int i = 0; i < initial; ++i) spawn(i);

  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  double t0 = NowSeconds();
  auto result = scan.Adjust(target);
  double latency_ms = (NowSeconds() - t0) * 1e3;
  for (int slot : result.slots_to_start) spawn(slot);

  while (!scan.Done())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  {
    std::lock_guard<std::mutex> lock(tm);
    for (auto& t : threads) t.join();
  }

  table->AddRow({StrFormat("%d -> %d", initial, target),
                 StrFormat("%u", pages), StrFormat("%.2f", latency_ms),
                 StrFormat("%u", result.maxpage),
                 taken.size() == pages ? "yes" : "NO (BUG)"});
}

void RangeProtocolRow(TextTable* table, const BTreeIndex& index, int entries,
                      int initial, int target) {
  AdjustableRangeScan scan(&index, {0, 99999}, initial, 12, 128);
  std::mutex mu;
  size_t delivered = 0;
  std::vector<std::thread> threads;
  std::mutex tm;

  std::function<void(int)> spawn = [&](int slot) {
    std::lock_guard<std::mutex> lock(tm);
    threads.emplace_back([&, slot] {
      for (;;) {
        auto chunk = scan.NextChunk(slot);
        if (!chunk.has_value()) return;
        size_t n = index.CountRange(chunk->lo, chunk->hi);
        {
          std::lock_guard<std::mutex> l2(mu);
          delivered += n;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(400));
      }
    });
  };
  for (int i = 0; i < initial; ++i) spawn(i);

  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  double t0 = NowSeconds();
  auto result = scan.Adjust(target);
  double latency_ms = (NowSeconds() - t0) * 1e3;
  for (int slot : result.slots_to_start) spawn(slot);

  while (!scan.Done())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  {
    std::lock_guard<std::mutex> lock(tm);
    for (auto& t : threads) t.join();
  }

  table->AddRow({StrFormat("%d -> %d", initial, target),
                 StrFormat("%d", entries), StrFormat("%.2f", latency_ms),
                 delivered == static_cast<size_t>(entries) ? "yes"
                                                           : "NO (BUG)"});
}

void LatencySweep() {
  std::printf(
      "Adjustment-latency sweep (fluid sim): INTER-WITH-ADJ gain on the\n"
      "Extreme workload vs the protocol latency modeled per adjustment:\n");
  MachineConfig machine = MachineConfig::PaperConfig();
  TextTable table({"adjust latency (s)", "INTRA-ONLY (s)", "INTER-W/-ADJ (s)",
                   "gain", "adjustments"});
  for (double latency : {0.0, 0.05, 0.2, 0.5, 1.0, 2.0}) {
    RunningStat intra, with;
    size_t adjustments = 0;
    for (int trial = 0; trial < 20; ++trial) {
      Rng rng(TestSeed(500 + trial));
      WorkloadOptions wo;
      auto tasks = MakeWorkload(WorkloadKind::kExtremeMix, wo, &rng);

      SimOptions so;
      so.adjust_latency = latency;
      {
        SchedulerOptions sched_opts;
        sched_opts.policy = SchedPolicy::kIntraOnly;
        AdaptiveScheduler sched(machine, sched_opts);
        FluidSimulator sim(machine, so);
        intra.Add(sim.Run(&sched, tasks).elapsed);
      }
      {
        SchedulerOptions sched_opts;
        sched_opts.policy = SchedPolicy::kInterWithAdj;
        AdaptiveScheduler sched(machine, sched_opts);
        FluidSimulator sim(machine, so);
        SimResult r = sim.Run(&sched, tasks);
        with.Add(r.elapsed);
        adjustments += r.num_adjustments;
      }
    }
    table.AddRow({StrFormat("%.2f", latency),
                  StrFormat("%.1f", intra.mean()),
                  StrFormat("%.1f", with.mean()),
                  StrFormat("%+.1f%%",
                            (intra.mean() - with.mean()) / intra.mean() * 100),
                  StrFormat("%.1f", adjustments / 20.0)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void Run(BenchObs* bench_obs) {
  std::printf("Figures 5 & 6: dynamic parallelism adjustment protocols\n\n");

  std::printf("Figure 5 — page partitioning (maxpage rendezvous), real "
              "threads:\n");
  TextTable page({"adjustment", "pages", "rendezvous (ms)", "maxpage",
                  "every page exactly once"});
  PageProtocolRow(&page, 600, 2, 6);
  PageProtocolRow(&page, 600, 6, 2);
  PageProtocolRow(&page, 600, 4, 8);
  PageProtocolRow(&page, 600, 8, 1);
  std::printf("%s\n", page.ToString().c_str());

  std::printf("Figure 6 — range partitioning (interval redistribution), "
              "real threads:\n");
  BTreeIndex index;
  Rng rng(TestSeed(3));
  constexpr int kEntries = 6000;
  for (int i = 0; i < kEntries; ++i)
    index.Insert(static_cast<int32_t>(rng.NextInt(0, 99999)),
                 TupleId{static_cast<uint32_t>(i), 0});
  TextTable range({"adjustment", "entries", "rendezvous (ms)",
                   "every entry exactly once"});
  RangeProtocolRow(&range, index, kEntries, 2, 6);
  RangeProtocolRow(&range, index, kEntries, 6, 2);
  RangeProtocolRow(&range, index, kEntries, 4, 8);
  std::printf("%s\n", range.ToString().c_str());

  LatencySweep();
  std::printf(
      "reading: the shared-memory rendezvous costs ~a page-service time\n"
      "(the paper's low-communication-delay argument); the sweep shows the\n"
      "Figure 7 gain is robust until latency approaches task lengths.\n");

  // Representative traced run with the paper's default adjustment latency:
  // the adjust instants in the trace line up with the rendezvous spans.
  {
    Rng rng(TestSeed(500));
    WorkloadOptions wo;
    auto tasks = MakeWorkload(WorkloadKind::kExtremeMix, wo, &rng);
    MachineConfig machine = MachineConfig::PaperConfig();
    SchedulerOptions sched_opts;
    sched_opts.policy = SchedPolicy::kInterWithAdj;
    AdaptiveScheduler sched(machine, sched_opts);
    sched.SetObservability(bench_obs->obs());
    FluidSimulator sim(machine, SimOptions());
    sim.SetObservability(bench_obs->obs());
    sim.Run(&sched, tasks);
  }
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) {
  xprs::BenchObs bench_obs(&argc, argv);
  xprs::Run(&bench_obs);
  bench_obs.Finish();
  return 0;
}
