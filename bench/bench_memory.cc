// §5 future-work extension bench: memory-constrained scheduling and
// memory-aware optimization.
//
// The paper closes with: "we cannot run two hashjoins in parallel unless
// there is enough memory for both hash tables. As future work, we will
// integrate memory constraints into our scheduling and optimization
// algorithms." This bench shows the integrated behaviour:
//   1. scheduler: elapsed time of a hash-join-heavy batch as the shared
//      working-memory budget shrinks (pairs that don't fit serialize);
//   2. optimizer: join-method choice (hash vs sort-merge) and plan cost as
//      the per-plan memory budget shrinks (grace-hash spills priced in);
//   3. the combination: memory-aware plans + memory-aware schedule vs
//      memory-oblivious plans forced to spill.

#include <cstdio>

#include "bench_obs.h"
#include "opt/two_phase.h"
#include "sim/fluid_sim.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/relations.h"

namespace xprs {
namespace {

struct Db {
  std::unique_ptr<DiskArray> array;
  std::unique_ptr<Catalog> catalog;
  Table* fat = nullptr;
  Table* fat2 = nullptr;
  Table* mid = nullptr;
  Table* thin = nullptr;
};

Db BuildDb() {
  Db db;
  db.array = std::make_unique<DiskArray>(4, DiskMode::kInstant);
  db.catalog = std::make_unique<Catalog>(db.array.get());
  Rng rng(TestSeed(31));
  db.fat = BuildRelation(db.catalog.get(), "fat", 1500, 700, 400, &rng)
               .value();
  db.fat2 = BuildRelation(db.catalog.get(), "fat2", 1200, 700, 400, &rng)
                .value();
  db.mid = BuildRelation(db.catalog.get(), "mid", 1200, 150, 400, &rng)
               .value();
  db.thin = BuildRelation(db.catalog.get(), "thin", 3000, 20, 400, &rng)
                .value();
  return db;
}

void SchedulerSweep(const Db& db, BenchObs* bench_obs) {
  std::printf("1. scheduler: hash-join batch vs shared memory budget\n");
  MachineConfig machine = MachineConfig::PaperConfig();
  CostModel model;

  // Four two-fragment hash-join queries; probe fragments hold hash tables.
  // The two heavyweights build on `fat` (~137 pages each) and their probe
  // fragments are one CPU-bound (thin outer) and one IO-bound (fat2
  // outer), so the scheduler *wants* to pair them — unless memory forbids.
  std::vector<std::unique_ptr<PlanNode>> plans;
  plans.push_back(MakeHashJoin(MakeSeqScan(db.thin, Predicate()),
                               MakeSeqScan(db.fat, Predicate()), 0, 0));
  plans.push_back(MakeHashJoin(MakeSeqScan(db.fat2, Predicate()),
                               MakeSeqScan(db.fat, Predicate()), 0, 0));
  plans.push_back(MakeHashJoin(MakeSeqScan(db.mid, Predicate()),
                               MakeSeqScan(db.thin, Predicate()), 0, 0));
  plans.push_back(MakeHashJoin(MakeSeqScan(db.thin, Predicate()),
                               MakeSeqScan(db.mid, Predicate()), 0, 0));

  std::vector<TaskProfile> all;
  std::vector<FragmentGraph> graphs;
  graphs.reserve(plans.size());
  double max_table = 0.0;
  for (size_t i = 0; i < plans.size(); ++i) {
    graphs.push_back(FragmentGraph::Decompose(*plans[i]));
    auto profiles = model.FragmentProfiles(
        graphs.back(), static_cast<int64_t>(i), static_cast<TaskId>(i) * 100);
    for (const auto& p : profiles) max_table = std::max(max_table, p.memory_pages);
    all.insert(all.end(), profiles.begin(), profiles.end());
  }

  TextTable table({"memory budget (pages)", "elapsed (s)", "cpu util",
                   "io util"});
  for (double factor : {0.0, 3.0, 1.5, 1.0, 0.7}) {
    double limit = factor == 0.0 ? 0.0 : max_table * factor;
    SchedulerOptions so;
    so.memory_pages_limit = limit;
    AdaptiveScheduler sched(machine, so);
    FluidSimulator sim(machine, SimOptions());
    if (factor == 1.0) {
      // Traced representative run: the budget that forces serialization.
      sched.SetObservability(bench_obs->obs());
      sim.SetObservability(bench_obs->obs());
    }
    SimResult r = sim.Run(&sched, all);
    table.AddRow({factor == 0.0 ? "unlimited"
                                : StrFormat("%.0f (%.1fx largest table)",
                                            limit, factor),
                  StrFormat("%.2f", r.elapsed),
                  StrFormat("%.0f%%", r.cpu_utilization * 100),
                  StrFormat("%.0f%%", r.io_utilization * 100)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void OptimizerSweep(const Db& db) {
  std::printf("2. optimizer: join-method choice vs per-plan memory budget\n");
  MachineConfig machine = MachineConfig::PaperConfig();

  QuerySpec q;
  q.relations = {{db.thin, Predicate()},
                 {db.fat, Predicate()},
                 {db.mid, Predicate()}};
  q.joins = {{0, 0, 1, 0}, {1, 0, 2, 0}};

  TextTable table({"budget (pages)", "seqcost (s)", "parcost (s)",
                   "join methods in plan"});
  for (double budget : {0.0, 200.0, 50.0, 10.0, 1.0}) {
    CostParams params;
    params.memory_pages_budget = budget;
    CostModel model(params);
    TwoPhaseOptimizer opt(machine, &model);
    auto result = opt.Optimize(q, TreeShape::kBushy);
    XPRS_CHECK_OK(result.status());

    // Count join kinds in the chosen plan.
    int hash = 0, merge = 0, nest = 0;
    std::function<void(const PlanNode&)> walk = [&](const PlanNode& n) {
      if (n.kind == PlanKind::kHashJoin) ++hash;
      if (n.kind == PlanKind::kMergeJoin) ++merge;
      if (n.kind == PlanKind::kNestLoopJoin) ++nest;
      if (n.left) walk(*n.left);
      if (n.right) walk(*n.right);
    };
    walk(*result->plan);
    table.AddRow({budget == 0.0 ? "unlimited" : StrFormat("%.0f", budget),
                  StrFormat("%.2f", result->seqcost),
                  StrFormat("%.2f", result->parcost),
                  StrFormat("%d hash, %d merge, %d nestloop", hash, merge,
                            nest)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void CombinedStudy(const Db& db) {
  std::printf("3. memory-aware plans + schedule vs oblivious plans "
              "(tight budget)\n");
  MachineConfig machine = MachineConfig::PaperConfig();

  QuerySpec q;
  q.relations = {{db.thin, Predicate()},
                 {db.fat, Predicate()},
                 {db.mid, Predicate()}};
  q.joins = {{0, 0, 1, 0}, {1, 0, 2, 0}};

  const double budget = 10.0;  // pages

  auto run = [&](const CostModel& model,
                 const OptimizedQuery& chosen) -> SimResult {
    FragmentGraph graph = FragmentGraph::Decompose(*chosen.plan);
    auto profiles = model.FragmentProfiles(graph);
    SchedulerOptions so;
    so.memory_pages_limit = budget;
    AdaptiveScheduler sched(machine, so);
    FluidSimulator sim(machine, SimOptions());
    return sim.Run(&sched, profiles);
  };

  // Oblivious: plan chosen ignoring memory, but *costed* with the spill
  // penalty it will actually pay at runtime.
  CostModel oblivious;  // no budget: picks hash joins freely
  TwoPhaseOptimizer opt_oblivious(machine, &oblivious);
  auto plan_oblivious = opt_oblivious.Optimize(q, TreeShape::kBushy);
  XPRS_CHECK_OK(plan_oblivious.status());

  CostParams aware_params;
  aware_params.memory_pages_budget = budget;
  CostModel aware(aware_params);
  TwoPhaseOptimizer opt_aware(machine, &aware);
  auto plan_aware = opt_aware.Optimize(q, TreeShape::kBushy);
  XPRS_CHECK_OK(plan_aware.status());

  SimResult r_oblivious = run(aware, *plan_oblivious);  // real (spill) costs
  SimResult r_aware = run(aware, *plan_aware);

  TextTable table({"plan", "elapsed under budget (s)"});
  table.AddRow({"memory-oblivious choice",
                StrFormat("%.2f", r_oblivious.elapsed)});
  table.AddRow({"memory-aware choice", StrFormat("%.2f", r_aware.elapsed)});
  std::printf("%s\n", table.ToString().c_str());
}

void Run(BenchObs* bench_obs) {
  std::printf("Memory-constraint extension (paper §5 future work)\n\n");
  Db db = BuildDb();
  db.array->AttachMetrics(bench_obs->metrics());
  SchedulerSweep(db, bench_obs);
  OptimizerSweep(db);
  CombinedStudy(db);
  db.array->PublishMetrics();
  std::printf(
      "reading: shrinking the shared budget serializes hash-table-holding\n"
      "fragments (elapsed rises, utilization falls); shrinking the plan\n"
      "budget flips hash joins to small-side builds and then to sort-merge;\n"
      "choosing plans with the budget in mind beats spilling.\n");
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) {
  xprs::BenchObs bench_obs(&argc, argv);
  xprs::Run(&bench_obs);
  bench_obs.Finish();
  return 0;
}
