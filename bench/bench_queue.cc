// §2.5 queue-mode study: "The above algorithm can be easily extended to
// handle a continuous sequence of tasks ... All we need to do is to
// represent S_io and S_cpu as queues."
//
// Streams Poisson arrivals of random-mix tasks at increasing load and
// compares the three policies on makespan, mean response time, and
// utilization — showing the pairing advantage grows with load until the
// disks saturate, and the SJF heuristic's response-time win.

#include <cstdio>

#include "bench_obs.h"
#include "sched/scheduler.h"
#include "sim/fluid_sim.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/tasks.h"

namespace xprs {
namespace {

constexpr int kTrials = 15;
constexpr int kTasks = 40;

struct RunStats {
  RunningStat response;
  RunningStat elapsed;
  RunningStat cpu;
  RunningStat io;
};

void RunPolicy(const MachineConfig& machine, SchedPolicy policy, bool sjf,
               double mean_gap, RunStats* stats) {
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(TestSeed(3000 + trial));
    WorkloadOptions wo;
    wo.num_tasks = kTasks;
    auto tasks = MakeArrivalSequence(WorkloadKind::kRandomMix, wo, mean_gap,
                                     &rng);
    SchedulerOptions so;
    so.policy = policy;
    so.shortest_job_first = sjf;
    AdaptiveScheduler sched(machine, so);
    FluidSimulator sim(machine, SimOptions());
    SimResult r = sim.Run(&sched, tasks);
    stats->response.Add(r.mean_response_time);
    stats->elapsed.Add(r.elapsed);
    stats->cpu.Add(r.cpu_utilization);
    stats->io.Add(r.io_utilization);
  }
}

void Run(BenchObs* bench_obs) {
  MachineConfig machine = MachineConfig::PaperConfig();
  std::printf("Queue mode (§2.5): continuous Poisson arrivals, %d tasks, "
              "%d trials/cell\n%s\n\n",
              kTasks, kTrials, machine.ToString().c_str());

  std::printf("mean response time (s) vs offered load:\n");
  TextTable resp({"mean inter-arrival (s)", "INTRA-ONLY", "INTER-W/O-ADJ",
                  "INTER-W/-ADJ", "W/-ADJ + SJF"});
  std::printf("total elapsed shown below in parentheses per cell\n");
  for (double gap : {6.0, 3.0, 1.5, 0.75}) {
    std::vector<std::string> row = {StrFormat("%.2f", gap)};
    struct Cell {
      SchedPolicy policy;
      bool sjf;
    } cells[] = {{SchedPolicy::kIntraOnly, false},
                 {SchedPolicy::kInterWithoutAdj, false},
                 {SchedPolicy::kInterWithAdj, false},
                 {SchedPolicy::kInterWithAdj, true}};
    for (const Cell& cell : cells) {
      RunStats stats;
      RunPolicy(machine, cell.policy, cell.sjf, gap, &stats);
      row.push_back(StrFormat("%.1f (%.0f)", stats.response.mean(),
                              stats.elapsed.mean()));
    }
    resp.AddRow(row);
  }
  std::printf("%s\n", resp.ToString().c_str());

  std::printf("utilization at heavy load (inter-arrival 0.75 s):\n");
  TextTable util({"policy", "cpu util", "io util"});
  for (SchedPolicy policy : {SchedPolicy::kIntraOnly,
                             SchedPolicy::kInterWithoutAdj,
                             SchedPolicy::kInterWithAdj}) {
    RunStats stats;
    RunPolicy(machine, policy, false, 0.75, &stats);
    util.AddRow({SchedPolicyName(policy),
                 StrFormat("%.0f%%", stats.cpu.mean() * 100),
                 StrFormat("%.0f%%", stats.io.mean() * 100)});
  }
  std::printf("%s\n", util.ToString().c_str());
  std::printf(
      "reading: at light load every policy keeps up (arrival-bound); as\n"
      "load rises the queues stay non-empty and IO/CPU pairing pulls ahead\n"
      "in both response time and makespan; SJF trims response time further\n"
      "at no makespan cost. The queue representation is exactly the fixed-\n"
      "set algorithm — only S_io/S_cpu become queues (§2.5).\n");

  // Representative traced run for --trace-out: heavy load, full algorithm.
  {
    Rng rng(TestSeed(3000));
    WorkloadOptions wo;
    wo.num_tasks = kTasks;
    auto tasks = MakeArrivalSequence(WorkloadKind::kRandomMix, wo, 0.75, &rng);
    SchedulerOptions so;
    AdaptiveScheduler sched(machine, so);
    sched.SetObservability(bench_obs->obs());
    FluidSimulator sim(machine, SimOptions());
    sim.SetObservability(bench_obs->obs());
    sim.Run(&sched, tasks);
  }
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) {
  xprs::BenchObs bench_obs(&argc, argv);
  xprs::Run(&bench_obs);
  bench_obs.Finish();
  return 0;
}
