// Regenerates the [HONG91] premise the scheduler is built on (§2.1):
// intra-operation parallelism speeds tasks up near-linearly until the task
// runs out of processors or disk bandwidth, and *excessive* parallelism is
// actively harmful. Produces elapsed-vs-parallelism curves for CPU-bound,
// IO-bound-sequential and IO-bound-random tasks on the fluid machine.

#include <cstdio>

#include "bench_obs.h"
#include "sched/balance.h"
#include "sim/fluid_sim.h"
#include "util/stats.h"
#include "util/str.h"

namespace xprs {
namespace {

// Simulates one task pinned at parallelism x (no scheduler: direct fluid
// rate computation).
double ElapsedAtParallelism(const MachineConfig& m, const SimOptions& so,
                            const TaskProfile& t, double x) {
  // speedup capped by maxp with the excess penalty, then io-throttled.
  double maxp = MaxParallelism(t, m);
  double useful =
      std::min(x, maxp) - so.excess_penalty * std::max(0.0, x - maxp);
  useful = std::max(useful, 0.25);
  double speedup = useful / (1.0 + so.process_overhead * (x - 1.0));
  double demand = t.io_rate() * speedup;
  std::vector<IoStream> streams = {{demand, t.pattern, x}};
  double beff = EffectiveBandwidth(m, streams);
  if (demand > beff) speedup *= beff / demand;
  return t.seq_time / speedup;
}

void Run(BenchObs* bench_obs) {
  MachineConfig m = MachineConfig::PaperConfig();
  std::printf("[HONG91] premise: intra-operation speedup curves\n");
  std::printf("%s\n", m.ToString().c_str());
  std::printf("(process overhead 2%%, excess-parallelism penalty 0.15)\n\n");

  SimOptions so;
  so.process_overhead = 0.02;
  so.excess_penalty = 0.15;

  struct Curve {
    const char* name;
    double rate;
    IoPattern pattern;
  } curves[] = {
      {"CPU-bound (8 io/s, seq)", 8.0, IoPattern::kSequential},
      {"IO-bound (60 io/s, seq)", 60.0, IoPattern::kSequential},
      {"IO-bound (55 io/s, random)", 55.0, IoPattern::kRandom},
  };

  std::vector<std::string> headers = {"parallelism"};
  for (const auto& c : curves) headers.push_back(c.name);
  headers.push_back("ideal speedup");
  TextTable table(headers);

  for (int x = 1; x <= m.num_cpus; ++x) {
    std::vector<std::string> row = {StrFormat("%d", x)};
    for (const auto& c : curves) {
      TaskProfile t;
      t.id = 0;
      t.seq_time = 60.0;
      t.total_ios = c.rate * 60.0;
      t.pattern = c.pattern;
      double elapsed = ElapsedAtParallelism(m, so, t, x);
      bench_obs->metrics()->counter("speedup.points")->Increment();
      bench_obs->obs().Emit({"speedup point", "sim", 'i',
                             static_cast<double>(x), 0.0, 0,
                             {{"curve", c.name},
                              {"parallelism", x},
                              {"speedup", 60.0 / elapsed}}});
      row.push_back(StrFormat("%.1fs (%.2fx)", elapsed, 60.0 / elapsed));
    }
    row.push_back(StrFormat("%dx", x));
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("maximum useful parallelism per task (maxp = B/C or N):\n");
  TextTable maxp_table({"task", "maxp", "limited by"});
  for (const auto& c : curves) {
    TaskProfile t;
    t.id = 0;
    t.seq_time = 60.0;
    t.total_ios = c.rate * 60.0;
    t.pattern = c.pattern;
    double maxp = MaxParallelism(t, m);
    maxp_table.AddRow({c.name, StrFormat("%.2f", maxp),
                       maxp >= m.num_cpus ? "processors (N)"
                                          : "disk bandwidth (B/C)"});
  }
  std::printf("%s\n", maxp_table.ToString().c_str());
  std::printf(
      "reading: near-linear until maxp, then flat-to-declining — the\n"
      "penalty beyond maxp is why the parallelizer never over-allocates\n"
      "and why INTER-WITHOUT-ADJ's uncapped backfills hurt (§3).\n");
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) {
  xprs::BenchObs bench_obs(&argc, argv);
  xprs::Run(&bench_obs);
  bench_obs.Finish();
  return 0;
}
