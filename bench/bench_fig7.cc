// Regenerates Figure 7 of the paper: turnaround time of the four §3
// workloads (All CPU, All IO, Extreme mix, Random mix) under the three
// scheduling algorithms (INTRA-ONLY, INTER-WITHOUT-ADJ, INTER-WITH-ADJ) on
// the simulated Sequent Symmetry (8 CPUs used, 4 disks, B = 240 io/s).
//
// Expected shape (paper §3): all three algorithms roughly tie on the
// homogeneous workloads; on mixed workloads INTER-WITH-ADJ improves on
// INTRA-ONLY by up to ~25%, while INTER-WITHOUT-ADJ loses to INTRA-ONLY
// because a task can be stuck at low parallelism after its partner ends.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_obs.h"
#include "sched/scheduler.h"
#include "sim/fluid_sim.h"
#include "util/check.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/relations.h"
#include "workload/tasks.h"

namespace xprs {
namespace {

constexpr int kTrials = 25;

double RunOne(const MachineConfig& machine, SchedPolicy policy,
              const std::vector<TaskProfile>& tasks,
              const Observability& obs = Observability()) {
  SchedulerOptions so;
  so.policy = policy;
  AdaptiveScheduler sched(machine, so);
  sched.SetObservability(obs);
  FluidSimulator sim(machine, SimOptions());
  sim.SetObservability(obs);
  return sim.Run(&sched, tasks).elapsed;
}

void Run(BenchObs* bench_obs) {
  MachineConfig machine = MachineConfig::PaperConfig();
  std::printf("Figure 7: turnaround time (s) of scheduling algorithms\n");
  std::printf("%s\n", machine.ToString().c_str());
  std::printf("workloads: 10 tasks each, %d random trials, mean reported\n\n",
              kTrials);

  const WorkloadKind kinds[] = {
      WorkloadKind::kAllCpuBound, WorkloadKind::kAllIoBound,
      WorkloadKind::kExtremeMix, WorkloadKind::kRandomMix};
  const SchedPolicy policies[] = {SchedPolicy::kIntraOnly,
                                  SchedPolicy::kInterWithoutAdj,
                                  SchedPolicy::kInterWithAdj};

  TextTable table({"Workload", "INTRA-ONLY", "INTER-W/O-ADJ", "INTER-W/-ADJ",
                   "with-adj gain"});
  for (WorkloadKind kind : kinds) {
    RunningStat stats[3];
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(TestSeed(1000 + trial));
      WorkloadOptions wo;
      auto tasks = MakeWorkload(kind, wo, &rng);
      for (int p = 0; p < 3; ++p)
        stats[p].Add(RunOne(machine, policies[p], tasks));
    }
    double gain =
        (stats[0].mean() - stats[2].mean()) / stats[0].mean() * 100.0;
    table.AddRow({WorkloadKindName(kind),
                  StrFormat("%.1f +-%.1f", stats[0].mean(), stats[0].stddev()),
                  StrFormat("%.1f +-%.1f", stats[1].mean(), stats[1].stddev()),
                  StrFormat("%.1f +-%.1f", stats[2].mean(), stats[2].stddev()),
                  StrFormat("%+.1f%%", gain)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // ---- Physical variant: the ten tasks are real relations built with
  // tuple-size-controlled io rates; their TaskProfiles come from *metering
  // actual scans* over the striped array, not from the analytic generator.
  std::printf("Figure 7 (physical relations, measured task profiles, one "
              "workload draw):\n");
  DiskArray array(machine.num_disks, DiskMode::kInstant);
  Catalog catalog(&array);
  Rng rng(TestSeed(4242));

  TextTable phys({"Workload", "INTRA-ONLY", "INTER-W/O-ADJ", "INTER-W/-ADJ",
                  "with-adj gain"});
  struct Band {
    double lo, hi;
  };
  auto make_physical = [&](WorkloadKind kind) {
    std::vector<TaskProfile> tasks;
    for (int i = 0; i < 10; ++i) {
      Band band{0, 0};
      switch (kind) {
        case WorkloadKind::kAllCpuBound:
          band = {5, 30};
          break;
        case WorkloadKind::kAllIoBound:
          band = {31, 60};
          break;
        case WorkloadKind::kExtremeMix:
          band = (i % 2 == 0) ? Band{60, 70} : Band{5, 15};
          break;
        case WorkloadKind::kRandomMix:
          band = {5, 70};
          break;
      }
      double rate = rng.NextDouble(band.lo, band.hi);
      int width = TextWidthForIoRate(rate);
      // Size the relation so the metered sequential time lands in the
      // same 4-30 s band as the analytic workloads:
      // pages = rate * T, tuples = pages * tuples-per-page.
      double target_time = rng.NextDouble(4.0, 30.0);
      double tpp_est =
          static_cast<double>(MaxTuplePayload()) / (width + 14.0);
      uint64_t tuples = static_cast<uint64_t>(
          std::max(1.0, rate * target_time * std::max(1.0, tpp_est)));
      tuples = std::min<uint64_t>(tuples, 60000);
      auto table_or = BuildRelation(
          &catalog,
          StrFormat("w%d_%d_%lld", static_cast<int>(kind), i,
                    static_cast<long long>(rng.Next() & 0xffff)),
          tuples, width, 5000, &rng);
      XPRS_CHECK_OK(table_or.status());
      auto measured = MeasureSeqScan(table_or.value());
      XPRS_CHECK_OK(measured.status());
      TaskProfile t = ToTaskProfile(*measured, i, StrFormat("phys%d", i),
                                    IoPattern::kSequential);
      tasks.push_back(std::move(t));
    }
    return tasks;
  };

  for (WorkloadKind kind : kinds) {
    auto tasks = make_physical(kind);
    double results[3];
    for (int p = 0; p < 3; ++p)
      results[p] = RunOne(machine, policies[p], tasks);
    double gain = (results[0] - results[2]) / results[0] * 100.0;
    phys.AddRow({WorkloadKindName(kind), StrFormat("%.1f", results[0]),
                 StrFormat("%.1f", results[1]),
                 StrFormat("%.1f", results[2]),
                 StrFormat("%+.1f%%", gain)});
  }
  std::printf("%s\n", phys.ToString().c_str());
  std::printf(
      "paper reference: ~parity on All CPU / All IO; INTER-WITH-ADJ up to\n"
      "~25%% faster than INTRA-ONLY on the mixed workloads;\n"
      "INTER-WITHOUT-ADJ at or below INTRA-ONLY.\n");

  // Representative traced run: the first Extreme-mix draw under the full
  // algorithm. The trace carries start / adjust / finish spans for all ten
  // tasks; open the --trace-out file in chrome://tracing or Perfetto.
  {
    Rng trace_rng(1000);
    WorkloadOptions wo;
    auto tasks = MakeWorkload(WorkloadKind::kExtremeMix, wo, &trace_rng);
    RunOne(machine, SchedPolicy::kInterWithAdj, tasks, bench_obs->obs());
  }
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) {
  xprs::BenchObs bench_obs(&argc, argv);
  xprs::Run(&bench_obs);
  bench_obs.Finish();
  return 0;
}
