// Ablations of the design choices DESIGN.md calls out:
//   A. pairing rule — most-IO x most-CPU (paper) vs FIFO pairing;
//   B. modeling seek interference in scheduling decisions — on vs off;
//   C. integer vs fractional degrees of parallelism;
//   D. shortest-job-first vs elapsed-time scheduling under continuous
//      arrivals (the §2.5 multi-user response-time heuristic);
//   E. workload composition — fraction of IO-bound tasks that are
//      unclustered index scans (random io);
//   F. evidence for "two tasks at a time suffice": utilization of
//      INTER-WITH-ADJ pairs on mixed workloads.

#include <cstdio>

#include "bench_obs.h"
#include "sched/scheduler.h"
#include "sim/fluid_sim.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/tasks.h"

namespace xprs {
namespace {

constexpr int kTrials = 25;

SimResult RunWorkload(const MachineConfig& machine,
                      const SchedulerOptions& so, const SimOptions& sim_opts,
                      const std::vector<TaskProfile>& tasks) {
  AdaptiveScheduler sched(machine, so);
  FluidSimulator sim(machine, sim_opts);
  return sim.Run(&sched, tasks);
}

double MeanElapsed(const MachineConfig& machine, const SchedulerOptions& so,
                   WorkloadKind kind, const WorkloadOptions& wo) {
  RunningStat stat;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(TestSeed(9000 + t));
    auto tasks = MakeWorkload(kind, wo, &rng);
    stat.Add(RunWorkload(machine, so, SimOptions(), tasks).elapsed);
  }
  return stat.mean();
}

void PairingRuleAblation(const MachineConfig& machine) {
  std::printf("A. pairing rule (INTER-WITH-ADJ, mean of %d trials):\n",
              kTrials);
  TextTable table({"workload", "extremes (paper)", "FIFO", "penalty"});
  WorkloadOptions wo;
  for (WorkloadKind kind :
       {WorkloadKind::kExtremeMix, WorkloadKind::kRandomMix}) {
    SchedulerOptions extremes;
    SchedulerOptions fifo;
    fifo.pairing_rule = PairingRule::kFifo;
    double a = MeanElapsed(machine, extremes, kind, wo);
    double b = MeanElapsed(machine, fifo, kind, wo);
    table.AddRow({WorkloadKindName(kind), StrFormat("%.1fs", a),
                  StrFormat("%.1fs", b),
                  StrFormat("%+.1f%%", (b - a) / a * 100)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void SeekModelAblation(const MachineConfig& machine) {
  std::printf("B. seek-interference model in scheduling decisions\n"
              "   (the simulator always models it; the scheduler may "
              "ignore it):\n");
  TextTable table({"workload", "modeled (paper)", "ignored", "penalty"});
  WorkloadOptions wo;
  wo.index_scan_fraction = 0.0;  // all-sequential: where the model matters
  for (WorkloadKind kind :
       {WorkloadKind::kAllIoBound, WorkloadKind::kRandomMix}) {
    SchedulerOptions with;
    SchedulerOptions without;
    without.model_seek_interference = false;
    double a = MeanElapsed(machine, with, kind, wo);
    double b = MeanElapsed(machine, without, kind, wo);
    table.AddRow({WorkloadKindName(kind), StrFormat("%.1fs", a),
                  StrFormat("%.1fs", b),
                  StrFormat("%+.1f%%", (b - a) / a * 100)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void IntegerParallelismAblation(const MachineConfig& machine) {
  std::printf("C. integer (real backends) vs fractional (analytic) degrees "
              "of parallelism:\n");
  TextTable table({"workload", "integer", "fractional", "rounding cost"});
  WorkloadOptions wo;
  for (WorkloadKind kind :
       {WorkloadKind::kExtremeMix, WorkloadKind::kRandomMix}) {
    SchedulerOptions integer;
    SchedulerOptions fractional;
    fractional.integer_parallelism = false;
    double a = MeanElapsed(machine, integer, kind, wo);
    double b = MeanElapsed(machine, fractional, kind, wo);
    table.AddRow({WorkloadKindName(kind), StrFormat("%.1fs", a),
                  StrFormat("%.1fs", b),
                  StrFormat("%+.1f%%", (a - b) / b * 100)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void SjfAblation(const MachineConfig& machine) {
  std::printf("D. shortest-job-first under continuous arrivals "
              "(mean inter-arrival 2s):\n");
  TextTable table({"metric", "elapsed-time rule", "SJF", "change"});
  RunningStat resp_fifo, resp_sjf, el_fifo, el_sjf;
  WorkloadOptions wo;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(TestSeed(4000 + t));
    auto tasks = MakeArrivalSequence(WorkloadKind::kRandomMix, wo, 2.0, &rng);
    SchedulerOptions plain;
    SimResult a = RunWorkload(machine, plain, SimOptions(), tasks);
    SchedulerOptions sjf;
    sjf.shortest_job_first = true;
    SimResult b = RunWorkload(machine, sjf, SimOptions(), tasks);
    resp_fifo.Add(a.mean_response_time);
    resp_sjf.Add(b.mean_response_time);
    el_fifo.Add(a.elapsed);
    el_sjf.Add(b.elapsed);
  }
  table.AddRow({"mean response time", StrFormat("%.2fs", resp_fifo.mean()),
                StrFormat("%.2fs", resp_sjf.mean()),
                StrFormat("%+.1f%%",
                          (resp_sjf.mean() - resp_fifo.mean()) /
                              resp_fifo.mean() * 100)});
  table.AddRow({"total elapsed", StrFormat("%.2fs", el_fifo.mean()),
                StrFormat("%.2fs", el_sjf.mean()),
                StrFormat("%+.1f%%", (el_sjf.mean() - el_fifo.mean()) /
                                         el_fifo.mean() * 100)});
  std::printf("%s\n", table.ToString().c_str());
}

void CompositionSweep(const MachineConfig& machine) {
  std::printf("E. workload composition: index-scan (random io) fraction of "
              "the IO-bound tasks:\n");
  TextTable table({"index-scan fraction", "INTRA-ONLY", "INTER-W/-ADJ",
                   "gain"});
  for (double frac : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    WorkloadOptions wo;
    wo.index_scan_fraction = frac;
    SchedulerOptions intra;
    intra.policy = SchedPolicy::kIntraOnly;
    SchedulerOptions with;
    double a = MeanElapsed(machine, intra, WorkloadKind::kExtremeMix, wo);
    double b = MeanElapsed(machine, with, WorkloadKind::kExtremeMix, wo);
    table.AddRow({StrFormat("%.2f", frac), StrFormat("%.1fs", a),
                  StrFormat("%.1fs", b),
                  StrFormat("%+.1f%%", (a - b) / a * 100)});
  }
  std::printf("%s\n", table.ToString().c_str());
}

void TwoTasksSuffice(const MachineConfig& machine) {
  std::printf("F. \"one IO-bound plus one CPU-bound task achieves maximum\n"
              "   utilization\" (§2.3) — utilization under INTER-WITH-ADJ\n"
              "   while both queues are non-empty:\n");
  TextTable table({"workload", "cpu util", "io util",
                   "max concurrent tasks"});
  WorkloadOptions wo;
  for (WorkloadKind kind :
       {WorkloadKind::kExtremeMix, WorkloadKind::kRandomMix}) {
    RunningStat cpu, io;
    int max_conc = 0;
    for (int t = 0; t < kTrials; ++t) {
      Rng rng(TestSeed(7000 + t));
      auto tasks = MakeWorkload(kind, wo, &rng);
      SchedulerOptions so;
      AdaptiveScheduler sched(machine, so);
      FluidSimulator sim(machine, SimOptions());
      SimResult r = sim.Run(&sched, tasks);
      cpu.Add(r.cpu_utilization);
      io.Add(r.io_utilization);
      for (const auto& s : sim.trace())
        max_conc = std::max(max_conc, s.tasks_running);
    }
    table.AddRow({WorkloadKindName(kind),
                  StrFormat("%.0f%%", cpu.mean() * 100),
                  StrFormat("%.0f%%", io.mean() * 100),
                  StrFormat("%d", max_conc)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "with two tasks the binding resource is already saturated during\n"
      "paired phases; a third concurrent task could only re-divide the\n"
      "same processors, which is why the paper stops at pairs.\n");
}

void Run(BenchObs* bench_obs) {
  MachineConfig machine = MachineConfig::PaperConfig();
  std::printf("Design-choice ablations\n%s\n\n", machine.ToString().c_str());
  PairingRuleAblation(machine);
  SeekModelAblation(machine);
  IntegerParallelismAblation(machine);
  SjfAblation(machine);
  CompositionSweep(machine);
  TwoTasksSuffice(machine);

  // Representative traced run for --trace-out: the SJF arrival sequence
  // exercises starts, adjustments and queueing in one trace.
  {
    Rng rng(TestSeed(4000));
    WorkloadOptions wo;
    auto tasks = MakeArrivalSequence(WorkloadKind::kRandomMix, wo, 2.0, &rng);
    SchedulerOptions so;
    AdaptiveScheduler sched(machine, so);
    sched.SetObservability(bench_obs->obs());
    FluidSimulator sim(machine, SimOptions());
    sim.SetObservability(bench_obs->obs());
    sim.Run(&sched, tasks);
  }
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) {
  xprs::BenchObs bench_obs(&argc, argv);
  xprs::Run(&bench_obs);
  bench_obs.Finish();
  return 0;
}
