// Regenerates the §3 calibration measurements:
//   - disk bandwidths (sequential / almost sequential / random io/s),
//   - the i/o rates of the calibration scans (r_min ~5 io/s, r_max 70
//     io/s, unclustered index scans ~34 io/s),
//   - the workload rate-band table (CPU [5,30), IO (30,60],
//     extreme CPU [5,15], extreme IO [60,70]),
// by building the physical relations and metering real scans over the
// simulated striped disk array.

#include <cstdio>

#include "bench_obs.h"
#include "sched/machine.h"
#include "util/stats.h"
#include "util/str.h"
#include "workload/relations.h"

namespace xprs {
namespace {

void Run(BenchObs* bench_obs) {
  MachineConfig machine = MachineConfig::PaperConfig();
  std::printf("Section 3 calibration: disk bandwidths and task io rates\n");
  std::printf("%s\n\n", machine.ToString().c_str());

  TextTable disks({"read pattern", "paper (io/s per disk)", "model"});
  disks.AddRow({"sequential", "97", StrFormat("%.0f", machine.seq_bw_per_disk)});
  disks.AddRow({"almost sequential", "60",
                StrFormat("%.0f", machine.almost_seq_bw_per_disk)});
  disks.AddRow({"random", "35", StrFormat("%.0f", machine.rand_bw_per_disk)});
  std::printf("%s\n", disks.ToString().c_str());

  DiskArray array(machine.num_disks, DiskMode::kInstant);
  array.AttachMetrics(bench_obs->metrics());
  Catalog catalog(&array);
  Rng rng(TestSeed(2024));

  TextTable rates({"task", "paper io rate", "measured io rate", "T (s)",
                   "D (pages)"});

  auto rmax = BuildRMax(&catalog, 150, &rng);
  auto m_rmax = MeasureSeqScan(rmax.value());
  rates.AddRow({"seq scan r_max (1 tuple/page)", "70",
                StrFormat("%.1f", m_rmax->io_rate()),
                StrFormat("%.2f", m_rmax->seq_time),
                StrFormat("%.0f", m_rmax->ios)});

  auto rmin = BuildRMin(&catalog, 4000, &rng);
  auto m_rmin = MeasureSeqScan(rmin.value());
  rates.AddRow({"seq scan r_min (b NULL)", "5",
                StrFormat("%.1f", m_rmin->io_rate()),
                StrFormat("%.2f", m_rmin->seq_time),
                StrFormat("%.0f", m_rmin->ios)});

  auto indexed = BuildRelation(&catalog, "r_idx", 1500, 60, 5000, &rng);
  auto m_idx = MeasureIndexScan(indexed.value(), KeyRange{0, 4999});
  rates.AddRow({"unclustered index scan", "\"always high\"",
                StrFormat("%.1f", m_idx->io_rate()),
                StrFormat("%.2f", m_idx->seq_time),
                StrFormat("%.0f", m_idx->ios)});

  // The four §3 rate bands, realized by tuple width.
  struct Band {
    const char* name;
    double lo, hi;
  } bands[] = {{"CPU-bound", 5, 30},
               {"IO-bound", 30, 60},
               {"extremely CPU-bound", 5, 15},
               {"extremely IO-bound", 60, 70}};
  for (const Band& band : bands) {
    double mid = 0.5 * (band.lo + band.hi);
    int width = TextWidthForIoRate(mid);
    auto rel = BuildRelation(&catalog,
                             StrFormat("band_%s_%d", band.name, width),
                             width > 2000 ? 200 : 1500, width, 5000, &rng);
    auto m = MeasureSeqScan(rel.value());
    rates.AddRow({StrFormat("%s band (target %.0f io/s)", band.name, mid),
                  StrFormat("[%.0f, %.0f]", band.lo, band.hi),
                  StrFormat("%.1f", m->io_rate()),
                  StrFormat("%.2f", m->seq_time),
                  StrFormat("%.0f", m->ios)});
  }
  std::printf("%s\n", rates.ToString().c_str());
  std::printf(
      "note: r_min measures below the paper's 5 io/s because this tuple\n"
      "header is leaner than Postgres's (~10 vs ~40 bytes) — see\n"
      "EXPERIMENTS.md. Classification threshold B/N = %.0f io/s.\n",
      machine.io_cpu_threshold());
  array.PublishMetrics();
}

}  // namespace
}  // namespace xprs

int main(int argc, char** argv) {
  xprs::BenchObs bench_obs(&argc, argv);
  xprs::Run(&bench_obs);
  bench_obs.Finish();
  return 0;
}
