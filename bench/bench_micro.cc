// Component micro-benchmarks (google-benchmark): storage primitives,
// B+tree, operators, the balance-point solver, and the scheduler decision
// path. These are throughput sanity checks for the substrates, not paper
// figures.

#include <benchmark/benchmark.h>

#include "bench_obs.h"
#include "exec/executor.h"
#include "opt/cost_model.h"
#include "sched/cost.h"
#include "sim/fluid_sim.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "util/rng.h"
#include "workload/tasks.h"

namespace xprs {
namespace {

void BM_PageAddTuple(benchmark::State& state) {
  const uint8_t data[64] = {};
  for (auto _ : state) {
    Page page;
    while (page.AddTuple(data, sizeof(data)).ok()) {
    }
    benchmark::DoNotOptimize(page.num_tuples());
  }
}
BENCHMARK(BM_PageAddTuple);

void BM_TupleSerializeRoundTrip(benchmark::State& state) {
  Schema schema = Schema::PaperSchema();
  Tuple t({Value(int32_t{42}), Value(std::string(64, 'x'))});
  for (auto _ : state) {
    std::vector<uint8_t> bytes;
    (void)t.Serialize(schema, &bytes);
    auto back = Tuple::Deserialize(schema, bytes.data(),
                                   static_cast<uint16_t>(bytes.size()));
    benchmark::DoNotOptimize(back.ok());
  }
}
BENCHMARK(BM_TupleSerializeRoundTrip);

void BM_BTreeInsert(benchmark::State& state) {
  Rng rng(TestSeed(1));
  for (auto _ : state) {
    state.PauseTiming();
    BTreeIndex tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i)
      tree.Insert(static_cast<int32_t>(rng.NextInt(0, 1 << 20)),
                  TupleId{static_cast<uint32_t>(i), 0});
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeLookup(benchmark::State& state) {
  BTreeIndex tree;
  Rng rng(TestSeed(2));
  for (int i = 0; i < 100000; ++i)
    tree.Insert(static_cast<int32_t>(rng.NextInt(0, 1 << 20)),
                TupleId{static_cast<uint32_t>(i), 0});
  for (auto _ : state) {
    auto hits = tree.Lookup(static_cast<int32_t>(rng.NextInt(0, 1 << 20)));
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(BM_BTreeLookup);

void BM_BufferPoolHit(benchmark::State& state) {
  DiskArray array(4, DiskMode::kInstant);
  for (int i = 0; i < 64; ++i) array.AllocateBlock();
  BufferPool pool(&array, 128);
  Rng rng(TestSeed(3));
  for (auto _ : state) {
    auto h = pool.Fetch(static_cast<BlockId>(rng.NextUint64(64)));
    benchmark::DoNotOptimize(h.ok());
  }
}
BENCHMARK(BM_BufferPoolHit);

struct HashJoinFixture {
  HashJoinFixture() : array(4, DiskMode::kInstant), catalog(&array) {
    Rng rng(TestSeed(4));
    left = catalog.CreateTable("l", Schema::PaperSchema()).value();
    right = catalog.CreateTable("r", Schema::PaperSchema()).value();
    for (int i = 0; i < 5000; ++i) {
      (void)left->file().Append(
          Tuple({Value(static_cast<int32_t>(rng.NextInt(0, 999))),
                 Value(std::string(16, 'l'))}));
    }
    for (int i = 0; i < 1000; ++i) {
      (void)right->file().Append(
          Tuple({Value(static_cast<int32_t>(rng.NextInt(0, 999))),
                 Value(std::string(16, 'r'))}));
    }
    (void)left->file().Flush();
    (void)right->file().Flush();
    (void)left->ComputeStats();
    (void)right->ComputeStats();
  }
  DiskArray array;
  Catalog catalog;
  Table* left;
  Table* right;
};

void BM_HashJoinExecute(benchmark::State& state) {
  static HashJoinFixture* fixture = new HashJoinFixture();
  auto plan = MakeHashJoin(MakeSeqScan(fixture->left, Predicate()),
                           MakeSeqScan(fixture->right, Predicate()), 0, 0);
  ExecContext ctx;
  for (auto _ : state) {
    auto rows = ExecutePlanSequential(*plan, ctx);
    benchmark::DoNotOptimize(rows->size());
  }
}
BENCHMARK(BM_HashJoinExecute);

void BM_BalancePointSolver(benchmark::State& state) {
  MachineConfig m = MachineConfig::PaperConfig();
  TaskProfile ti;
  ti.id = 1;
  ti.seq_time = 10;
  ti.total_ios = 650;
  ti.pattern = IoPattern::kSequential;
  TaskProfile tj;
  tj.id = 2;
  tj.seq_time = 10;
  tj.total_ios = 80;
  tj.pattern = IoPattern::kSequential;
  for (auto _ : state) {
    BalancePoint bp = SolveBalance(ti, tj, m, true);
    benchmark::DoNotOptimize(bp.xi);
  }
}
BENCHMARK(BM_BalancePointSolver);

void BM_SchedulerFullWorkload(benchmark::State& state) {
  MachineConfig m = MachineConfig::PaperConfig();
  Rng rng(TestSeed(5));
  WorkloadOptions wo;
  auto tasks = MakeWorkload(WorkloadKind::kExtremeMix, wo, &rng);
  for (auto _ : state) {
    SchedulerOptions so;
    AdaptiveScheduler sched(m, so);
    FluidSimulator sim(m, SimOptions());
    SimResult r = sim.Run(&sched, tasks);
    benchmark::DoNotOptimize(r.elapsed);
  }
}
BENCHMARK(BM_SchedulerFullWorkload);

void BM_CostModelFourWayEstimate(benchmark::State& state) {
  static HashJoinFixture* fixture = new HashJoinFixture();
  auto plan = MakeHashJoin(
      MakeHashJoin(MakeSeqScan(fixture->left, Predicate()),
                   MakeSeqScan(fixture->right, Predicate()), 0, 0),
      MakeSeqScan(fixture->right, Predicate()), 0, 0);
  CostModel model;
  for (auto _ : state) {
    PlanEstimate est = model.Estimate(*plan);
    benchmark::DoNotOptimize(est.seq_time);
  }
}
BENCHMARK(BM_CostModelFourWayEstimate);

}  // namespace
}  // namespace xprs

// Custom main instead of BENCHMARK_MAIN(): BenchObs strips --trace-out
// before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  xprs::BenchObs bench_obs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Traced representative run so --trace-out yields a real schedule and the
  // metrics line carries scheduler/simulator counters.
  {
    xprs::MachineConfig m = xprs::MachineConfig::PaperConfig();
    xprs::Rng rng(xprs::TestSeed(5));
    xprs::WorkloadOptions wo;
    auto tasks = xprs::MakeWorkload(xprs::WorkloadKind::kExtremeMix, wo, &rng);
    xprs::SchedulerOptions so;
    xprs::AdaptiveScheduler sched(m, so);
    sched.SetObservability(bench_obs.obs());
    xprs::FluidSimulator sim(m, xprs::SimOptions());
    sim.SetObservability(bench_obs.obs());
    sim.Run(&sched, tasks);
  }
  bench_obs.Finish();
  return 0;
}
