#!/usr/bin/env python3
"""Compare a fresh benchmark artifact against the committed baseline.

Usage:
  perf_compare.py FRESH.json BASELINE.json [--threshold=0.15]

Handles the standing artifacts:
  - BENCH_macro.json (bench_macro): gates per-mode speedup_vs_serial,
    cross-mode correctness diffs and the workload checksums.
  - BENCH_exec.json (bench_exec): gates per-workload vectorized speedup.
  - BENCH_serve.json (bench_serve): gates concurrent-vs-oracle diffs and
    peak concurrency exactly, plus the closed-loop throughput *scaling*
    ratio (K clients vs 1 client on the same box) against the baseline's.

The artifact kind is auto-detected from its top-level keys ("modes" /
"workloads" / "closed_loop"), so ci.sh calls one script for all.

Gating philosophy: CI machines differ wildly in absolute throughput, so
absolute numbers (rows/s, qps, latency) are reported but never gated.
What IS gated, at --threshold (default 15%), are machine-portable ratios —
a mode's speedup relative to the serial engine on the same box at the same
moment. A regression must also clear an absolute noise floor (default
0.15x of speedup): on a loaded single-core runner the thread-handoff
modes (parallel, served) sit well below 1x where a few milliseconds of
scheduler jitter swings the ratio by more than 15%, and a sub-floor delta
is not actionable. Correctness (result diffs, row checksums) is gated
exactly: any drift fails. When a ratio regresses, the per-query
mean-latency deltas are printed so the failure names the queries that
moved.

Exit status: 0 = no regression, 1 = regression or malformed artifact.
"""

import json
import sys


def fmt_pct(ratio):
    return f"{(ratio - 1.0) * 100:+.1f}%"


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)


def explain_macro_mode(name, fresh_mode, base_mode):
    """Prints the per-query latency movers for a regressed mode."""
    fresh_q = fresh_mode.get("per_query_mean_ms", {})
    base_q = base_mode.get("per_query_mean_ms", {})
    movers = []
    for query, fresh_ms in fresh_q.items():
        base_ms = base_q.get(query)
        if base_ms is None or base_ms <= 0:
            continue
        movers.append((fresh_ms / base_ms, query, base_ms, fresh_ms))
    movers.sort(reverse=True)
    if not movers:
        return
    print(f"    slowest-moving queries in mode '{name}':")
    for ratio, query, base_ms, fresh_ms in movers[:5]:
        print(f"      {query:<24} {base_ms:8.3f} ms -> {fresh_ms:8.3f} ms "
              f"({fmt_pct(ratio)})")


NOISE_FLOOR = 0.15  # absolute speedup delta below which nothing is gated


def compare_macro(fresh, base, threshold):
    failures = []

    # Correctness is exact: the macro bench cross-checks every mode against
    # the serial oracle; any diff is a bug regardless of the baseline.
    diffs = fresh.get("correctness", {}).get("diffs", -1)
    if diffs != 0:
        failures.append(f"correctness: {diffs} cross-mode result diffs")

    # Checksums are seeded + FNV-1a, so they are identical across machines
    # for a given (scale, distribution). Only comparable when the fresh run
    # used the same workload shape as the baseline.
    same_shape = (fresh.get("scale") == base.get("scale")
                  and fresh.get("distribution") == base.get("distribution"))
    if same_shape:
        for query, want in base.get("checksums", {}).items():
            got = fresh.get("checksums", {}).get(query)
            if got != want:
                failures.append(
                    f"checksum drift on {query}: baseline {want} vs {got}")
    else:
        print("note: workload shape differs from baseline "
              f"(scale {base.get('scale')} -> {fresh.get('scale')}, "
              f"dist {base.get('distribution')} -> "
              f"{fresh.get('distribution')}); checksum gate skipped")

    fresh_modes = {m["name"]: m for m in fresh.get("modes", [])}
    base_modes = {m["name"]: m for m in base.get("modes", [])}
    for name in base_modes:
        if name not in fresh_modes:
            failures.append(f"mode '{name}' disappeared from the artifact")

    print(f"{'mode':<12} {'speedup(base)':>13} {'speedup(new)':>13} "
          f"{'delta':>8}   {'qps(base)':>10} {'qps(new)':>10}")
    for name, base_mode in base_modes.items():
        fresh_mode = fresh_modes.get(name)
        if fresh_mode is None:
            continue
        base_speedup = base_mode.get("speedup_vs_serial", 0.0)
        fresh_speedup = fresh_mode.get("speedup_vs_serial", 0.0)
        base_qps = base_mode.get("throughput_qps", 0.0)
        fresh_qps = fresh_mode.get("throughput_qps", 0.0)
        ratio = fresh_speedup / base_speedup if base_speedup > 0 else 1.0
        print(f"{name:<12} {base_speedup:>12.3f}x {fresh_speedup:>12.3f}x "
              f"{fmt_pct(ratio):>8}   {base_qps:>10.1f} {fresh_qps:>10.1f}")
        regressed = (base_speedup > 0 and ratio < 1.0 - threshold
                     and base_speedup - fresh_speedup > NOISE_FLOOR)
        if regressed:
            failures.append(
                f"mode '{name}' speedup_vs_serial regressed "
                f"{fmt_pct(ratio)}: {base_speedup:.3f}x -> "
                f"{fresh_speedup:.3f}x (threshold {threshold:.0%})")
            explain_macro_mode(name, fresh_mode, base_mode)

    overhead = fresh.get("overhead", {}).get("percent")
    if overhead is not None:
        print(f"tracing-disabled overhead: {overhead:.2f}%"
              " (gated separately by ci.sh)")
    return failures


def compare_exec(fresh, base, threshold):
    failures = []
    fresh_w = {w["name"]: w for w in fresh.get("workloads", [])}
    base_w = {w["name"]: w for w in base.get("workloads", [])}
    for name in base_w:
        if name not in fresh_w:
            failures.append(f"workload '{name}' disappeared from the artifact")

    print(f"{'workload':<18} {'speedup(base)':>13} {'speedup(new)':>13} "
          f"{'delta':>8}")
    for name, bw in base_w.items():
        fw = fresh_w.get(name)
        if fw is None:
            continue
        ratio = fw["speedup"] / bw["speedup"] if bw["speedup"] > 0 else 1.0
        print(f"{name:<18} {bw['speedup']:>12.3f}x {fw['speedup']:>12.3f}x "
              f"{fmt_pct(ratio):>8}")
        if (bw["speedup"] > 0 and ratio < 1.0 - threshold
                and bw["speedup"] - fw["speedup"] > NOISE_FLOOR):
            failures.append(
                f"workload '{name}' vectorized speedup regressed "
                f"{fmt_pct(ratio)}: {bw['speedup']:.3f}x -> "
                f"{fw['speedup']:.3f}x (threshold {threshold:.0%})")
    return failures


def compare_serve(fresh, base, threshold):
    failures = []

    # Correctness and liveness are exact gates: concurrent execution must
    # match the serial oracle, nothing may fail outright, and the scheduler
    # must actually have overlapped queries.
    diffs = fresh.get("correctness", {}).get("diffs", -1)
    if diffs != 0:
        failures.append(f"correctness: {diffs} concurrent-vs-oracle diffs")
    if fresh.get("peak_running", 0) < 2:
        failures.append(
            f"peak_running {fresh.get('peak_running')} < 2: serving never "
            "overlapped two queries")
    for loop in ("closed_loop", "open_loop"):
        failed = sum(p.get("failed", 0) for p in fresh.get(loop, []))
        if failed != 0:
            failures.append(f"{loop}: {failed} queries failed outright")

    # Absolute qps is machine-bound; the portable ratio is how throughput
    # scales with client count relative to the same box's 1-client point.
    def scaling(points):
        by_clients = {p["clients"]: p["throughput_qps"]
                      for p in points if p.get("clients")}
        one = by_clients.get(1)
        if not one:
            return {}
        return {k: v / one for k, v in by_clients.items() if k != 1}

    fresh_s = scaling(fresh.get("closed_loop", []))
    base_s = scaling(base.get("closed_loop", []))
    print(f"{'clients':<8} {'scaling(base)':>13} {'scaling(new)':>13} "
          f"{'delta':>8}")
    regressed = []
    comparable = 0
    for clients in sorted(base_s):
        if clients not in fresh_s:
            failures.append(
                f"closed-loop point for {clients} clients disappeared")
            continue
        comparable += 1
        ratio = fresh_s[clients] / base_s[clients] if base_s[clients] > 0 \
            else 1.0
        print(f"{clients:<8} {base_s[clients]:>12.3f}x "
              f"{fresh_s[clients]:>12.3f}x {fmt_pct(ratio):>8}")
        if (base_s[clients] > 0 and ratio < 1.0 - threshold
                and base_s[clients] - fresh_s[clients] > NOISE_FLOOR):
            regressed.append(
                f"closed-loop scaling at {clients} clients regressed "
                f"{fmt_pct(ratio)}: {base_s[clients]:.3f}x -> "
                f"{fresh_s[clients]:.3f}x (threshold {threshold:.0%})")
    # Single-point scaling wobbles with scheduler jitter on loaded CI
    # boxes; a real serialization regression (a new global lock, a convoy)
    # drags down every multi-client point at once, so only an
    # across-the-board collapse is gated.
    if comparable > 0 and len(regressed) == comparable:
        failures.extend(regressed)
    elif regressed:
        for r in regressed:
            print(f"  note (not gated, other points held): {r}")
    for p in fresh.get("open_loop", []):
        print(f"open loop {p.get('offered_qps', 0):>7.0f} q/s offered: "
              f"{p.get('throughput_qps', 0):>7.1f} done, "
              f"{p.get('rejected', 0)} rejected (reported, not gated)")
    return failures


def main(argv):
    threshold = 0.15
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    fresh, base = load(paths[0]), load(paths[1])

    def kind_of(artifact):
        for key, kind in (("modes", "macro"), ("workloads", "exec"),
                          ("closed_loop", "serve")):
            if key in artifact:
                return kind
        return None

    kind = kind_of(fresh)
    if kind != kind_of(base):
        print("perf_compare: artifact kinds differ between fresh and "
              "baseline", file=sys.stderr)
        return 1
    if kind == "macro":
        failures = compare_macro(fresh, base, threshold)
    elif kind == "exec":
        failures = compare_exec(fresh, base, threshold)
    elif kind == "serve":
        failures = compare_serve(fresh, base, threshold)
    else:
        print("perf_compare: unrecognized artifact (no 'modes', "
              "'workloads' or 'closed_loop' key)", file=sys.stderr)
        return 1

    if failures:
        print(f"\nperf_compare: {kind} artifact REGRESSED "
              f"({len(failures)} failure(s)):")
        for f in failures:
            print(f"  FAIL: {f}")
        return 1
    print(f"\nperf_compare: {kind} artifact ok "
          f"(no ratio regression beyond {threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
