#!/usr/bin/env bash
# CI entry point: build + test the default config, then rebuild and retest
# under AddressSanitizer + UndefinedBehaviorSanitizer. The sanitizer pass
# exists to catch the class of bugs this repo has been bitten by before:
# out-of-range std::clamp (UB), data races on metric counters, and
# use-after-free on handed-out trace/metric pointers.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-4}"

echo "==> [1/2] default config"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "==> [2/2] asan+ubsan config"
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
cmake --build build-asan -j "${JOBS}"
# abort_on_error gives ctest a real failure exit code; detect_leaks stays on
# by default where supported.
ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "==> CI green"
