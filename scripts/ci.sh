#!/usr/bin/env bash
# CI entry point: build + run the tier1 test suite in the default config,
# gate the benchmark artifacts (vectorized, serving, macro, chaos soak)
# against their schemas and committed baselines, then rebuild under
# AddressSanitizer + UndefinedBehaviorSanitizer and run everything — tier1
# plus the slow randomized harnesses (the differential stress driver) —
# then rebuild once more under ThreadSanitizer and run the
# concurrency-heavy subset plus a fixed-seed chaos smoke. The sanitizer
# passes exist to catch the class of bugs this repo has been bitten by
# before: out-of-range std::clamp (UB), data races on metric counters, and
# use-after-free on handed-out trace/metric pointers.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-4}"

# Snapshot for the artifact-hygiene gate: anything *new* in git status
# after the full build is a build artifact escaping the gitignored trees.
STATUS_BEFORE="$(git status --porcelain)"

echo "==> [1/10] default config (tier1)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "${JOBS}"
ctest --test-dir build -L tier1 --output-on-failure -j "${JOBS}"

echo "==> [2/10] profile/trace schema validation"
# One profiled bench run, then structural validation of every emitted JSON
# artifact: the Chrome trace, the metrics snapshot (p50/p95/p99 present on
# histograms), and the QueryProfile document. Guards the contract consumed
# by trace viewers and the EXPERIMENTS.md figure tooling.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "${OBS_TMP}"' EXIT
./build/bench/bench_profile --rows=600 \
  --trace-out="${OBS_TMP}/trace.json" \
  --metrics-out="${OBS_TMP}/metrics.json" \
  --profile-out="${OBS_TMP}/profile.json" > "${OBS_TMP}/stdout.txt"
python3 - "${OBS_TMP}" <<'PYEOF'
import json, sys

tmp = sys.argv[1]

trace = json.load(open(f"{tmp}/trace.json"))
assert "traceEvents" in trace, "trace: missing traceEvents"
names = {e.get("name") for e in trace["traceEvents"]}
assert "profile cpus busy" in names, "trace: missing profiler counter track"
assert any(e.get("ph") == "C" for e in trace["traceEvents"]), \
    "trace: no counter events"

metrics = json.load(open(f"{tmp}/metrics.json"))
for section in ("counters", "gauges", "histograms"):
    assert section in metrics, f"metrics: missing {section}"
for key in ("profile.queries", "profile.tuples_out", "profile.pages_read"):
    assert key in metrics["counters"], f"metrics: missing counter {key}"
for name, hist in metrics["histograms"].items():
    for key in ("count", "sum", "min", "max", "buckets", "p50", "p95", "p99"):
        assert key in hist, f"metrics: histogram {name} missing {key}"

profile = json.load(open(f"{tmp}/profile.json"))
for section in ("operators", "fragments", "timeline", "utilization",
                "totals"):
    assert section in profile, f"profile: missing {section}"
assert profile["operators"], "profile: no operators"
for op in profile["operators"]:
    for key in ("id", "parent", "kind", "label", "est", "actual"):
        assert key in op, f"profile: operator missing {key}"
assert profile["totals"]["tuples_out"] == sum(
    op["actual"]["rows"] for op in profile["operators"]), \
    "profile: totals do not reconcile with operators"
assert profile["fragments"], "profile: parallel run recorded no fragments"
assert profile["timeline"], "profile: no adjustment timeline"
print(f"profile schema ok: {len(profile['operators'])} operators, "
      f"{len(profile['fragments'])} fragments, "
      f"{len(trace['traceEvents'])} trace events")
PYEOF

echo "==> [3/10] vectorized executor throughput gate"
# Tuple vs batch engine on CPU-bound workloads (kInstant disk). The batch
# path's whole point is amortizing per-tuple costs, so the gate fails if
# the scan+filter or hash-join speedup drops below 2x. Results land in
# build/ (gitignored) for the perf dashboard; correctness of the batch
# path itself is covered by the tier1 differential oracle above, which
# runs every generated plan through six vectorized modes.
./build/bench/bench_exec --rows=200000 --reps=5 --out=build/BENCH_exec.json
python3 - build/BENCH_exec.json <<'PYEOF'
import json, sys

bench = json.load(open(sys.argv[1]))
by_name = {w["name"]: w for w in bench["workloads"]}
for name in ("scan_filter", "hash_join_count", "join_group_sum"):
    assert name in by_name, f"bench_exec: missing workload {name}"
for name in ("scan_filter", "hash_join_count"):
    speedup = by_name[name]["speedup"]
    assert speedup >= 2.0, \
        f"bench_exec: {name} vectorized speedup {speedup:.2f}x < 2.0x"
assert by_name["join_group_sum"]["speedup"] >= 1.0, \
    "bench_exec: join_group_sum vectorized run slower than tuple run"
print("vectorized speedups ok: " + ", ".join(
    f"{w['name']}={w['speedup']:.2f}x" for w in bench["workloads"]))
PYEOF

echo "==> [4/10] concurrent serving smoke"
# Closed- and open-loop serving run through ServingEngine/QueryScheduler.
# Schema-validates BENCH_serve.json and gates on the two properties the
# serving layer exists for: the scheduler actually overlapped >= 2 queries
# and the concurrent results matched the serial oracle exactly. Results
# land in build/ (gitignored) for the perf dashboard.
./build/bench/bench_serve --rows=2000 --clients=4 --queries-per-client=15 \
  --qps=100,400 --open-seconds=0.5 --out=build/BENCH_serve.json
python3 - build/BENCH_serve.json <<'PYEOF'
import json, sys

bench = json.load(open(sys.argv[1]))
for key in ("rows", "peak_running", "correctness", "closed_loop",
            "open_loop"):
    assert key in bench, f"bench_serve: missing {key}"
for key in ("queries", "diffs"):
    assert key in bench["correctness"], f"bench_serve: correctness.{key}"
assert bench["closed_loop"], "bench_serve: no closed-loop points"
assert bench["open_loop"], "bench_serve: no open-loop points"
for p in bench["closed_loop"]:
    for key in ("clients", "completed", "failed", "throughput_qps",
                "p50_ms", "p95_ms", "p99_ms"):
        assert key in p, f"bench_serve: closed_loop point missing {key}"
    assert p["failed"] == 0, f"bench_serve: closed loop had failures: {p}"
for p in bench["open_loop"]:
    for key in ("offered_qps", "completed", "rejected", "failed",
                "throughput_qps", "p50_ms", "p99_ms"):
        assert key in p, f"bench_serve: open_loop point missing {key}"
    assert p["failed"] == 0, f"bench_serve: open loop had failures: {p}"
assert bench["correctness"]["queries"] > 0, "bench_serve: nothing checked"
assert bench["correctness"]["diffs"] == 0, \
    f"bench_serve: {bench['correctness']['diffs']} concurrent result diffs"
assert bench["peak_running"] >= 2, \
    f"bench_serve: never sustained 2 concurrent queries " \
    f"(peak {bench['peak_running']})"
print(f"serving ok: peak_running={bench['peak_running']}, "
      f"{bench['correctness']['queries']} concurrent queries, 0 diffs, "
      f"{len(bench['closed_loop'])} closed + "
      f"{len(bench['open_loop'])} open loop points")
PYEOF

echo "==> [5/10] macro benchmark + perf trajectory gates"
# The standing TPC-H-flavored macro benchmark: every engine mode over one
# workload, with cross-mode checksums, per-query lifecycle span breakdowns
# and the tracing-overhead measurement. Gates, in order: artifact schema,
# cross-mode correctness, served span coverage (the lifecycle children
# must tile each root span), the tracing-disabled overhead budget, and the
# perf trajectory against the committed baselines (bench/baselines/) for
# the macro, vectorized-executor and serving artifacts.
./build/bench/bench_macro --scale=4 --reps=5 --slow-ms=5 \
  --out=build/BENCH_macro.json
python3 - build/BENCH_macro.json <<'PYEOF'
import json, sys

bench = json.load(open(sys.argv[1]))
for key in ("scale", "distribution", "reps", "correctness", "checksums",
            "modes", "served", "overhead"):
    assert key in bench, f"bench_macro: missing {key}"
modes = {m["name"]: m for m in bench["modes"]}
for name in ("serial", "vectorized", "spill", "parallel", "served"):
    assert name in modes, f"bench_macro: missing mode {name}"
    for key in ("executed", "diffs", "total_seconds", "throughput_qps",
                "p50_ms", "p95_ms", "p99_ms", "speedup_vs_serial",
                "per_query_mean_ms"):
        assert key in modes[name], f"bench_macro: mode {name} missing {key}"
    assert modes[name]["diffs"] == 0, \
        f"bench_macro: mode {name} had {modes[name]['diffs']} result diffs"
assert bench["correctness"]["diffs"] == 0, \
    f"bench_macro: {bench['correctness']['diffs']} cross-mode diffs"
assert bench["checksums"], "bench_macro: no workload checksums"

served = bench["served"]
assert served["span_coverage_min"] >= 0.95, \
    f"bench_macro: lifecycle spans cover only " \
    f"{served['span_coverage_min']:.3f} of the worst root span (< 0.95)"
assert served["span_breakdown"], "bench_macro: no span breakdown"
for entry in served["span_breakdown"]:
    for key in ("query", "runs", "total_ms", "admission_ms",
                "queue_wait_ms", "execute_ms", "drain_ms"):
        assert key in entry, f"bench_macro: span_breakdown missing {key}"
assert served["slow_query_entries"] > 0, \
    "bench_macro: slow-query log stayed empty at a 5ms threshold"

overhead = bench["overhead"]["percent"]
assert overhead <= 2.0, \
    f"bench_macro: tracing-disabled overhead {overhead:.2f}% > 2%"
print(f"macro schema ok: {len(modes)} modes, "
      f"span coverage min={served['span_coverage_min']:.4f}, "
      f"overhead={overhead:.2f}%, "
      f"{served['slow_query_entries']} slow-query entries")
PYEOF
python3 scripts/perf_compare.py build/BENCH_macro.json \
  bench/baselines/BENCH_macro.json --threshold=0.15
python3 scripts/perf_compare.py build/BENCH_exec.json \
  bench/baselines/BENCH_exec.json --threshold=0.15
python3 scripts/perf_compare.py build/BENCH_serve.json \
  bench/baselines/BENCH_serve.json --threshold=0.15

echo "==> [6/10] chaos soak (overload/recovery gates)"
# Standing fault-storm soak: a poison drill plus a ramp/peak/recover fault
# schedule against the full serving stack. The binary self-gates (exit 1)
# on oracle diffs, leaked pins/sessions, a missing shedding episode or a
# failed recovery; this block re-validates the artifact schema and the
# headline gates so a silent change to the binary's own gating still trips
# CI.
./build/bench/bench_soak --rows=3000 --duration-s=5 --clients=4 \
  --out=build/BENCH_soak.json
python3 - build/BENCH_soak.json <<'PYEOF'
import json, sys

soak = json.load(open(sys.argv[1]))
for key in ("seed", "duration_s", "clients", "peak_fault_rate",
            "faults_injected", "submitted", "completed", "failed", "shed",
            "diffs", "leaked_pins", "leaked_sessions", "overload",
            "breakers", "poison", "phases"):
    assert key in soak, f"bench_soak: missing {key}"
ov = soak["overload"]
for key in ("reached_degraded", "reached_shedding", "recovered",
            "final_state", "sheds", "transitions"):
    assert key in ov, f"bench_soak: overload missing {key}"
for t in ov["transitions"]:
    for key in ("t_s", "from", "to", "reason"):
        assert key in t, f"bench_soak: transition missing {key}"
for domain in ("storage_read", "spill_io"):
    assert domain in soak["breakers"], f"bench_soak: breakers.{domain}"
for key in ("quarantined", "fast_reject", "entries"):
    assert key in soak["poison"], f"bench_soak: poison.{key}"
for p in soak["phases"]:
    for key in ("name", "seconds", "submitted", "completed", "failed",
                "shed", "p99_ms"):
        assert key in p, f"bench_soak: phase missing {key}"

assert soak["diffs"] == 0, f"bench_soak: {soak['diffs']} oracle diffs"
assert soak["leaked_pins"] == 0, \
    f"bench_soak: {soak['leaked_pins']} leaked buffer pins"
assert soak["leaked_sessions"] == 0, \
    f"bench_soak: {soak['leaked_sessions']} leaked sessions"
assert ov["reached_shedding"], "bench_soak: storm never drove shedding"
assert ov["recovered"], \
    f"bench_soak: did not recover (final state {ov['final_state']})"
assert soak["poison"]["quarantined"] > 0, "bench_soak: nothing quarantined"
assert soak["poison"]["fast_reject"] > 0, \
    "bench_soak: quarantined query was not fast-rejected"
print(f"soak ok: {soak['completed']}/{soak['submitted']} completed, "
      f"{soak['shed']} shed, {len(ov['transitions'])} transitions, "
      f"final={ov['final_state']}, 0 diffs / 0 leaks")
PYEOF

echo "==> [7/10] asan+ubsan config (tier1 + slow)"
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
cmake --build build-asan -j "${JOBS}"
# abort_on_error gives ctest a real failure exit code; detect_leaks stays on
# by default where supported. No -L filter: this pass also runs the
# slow-labeled stress_differential (50 iterations).
ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "==> [8/10] tsan config (concurrency subset)"
# ThreadSanitizer catches the races the resilience layer is most exposed
# to: the cancellation token, the done-queue control loop, the retry
# ladder re-launching fragment runs, buffer-pool admission counters, and
# the serving layer's scheduler/session machinery.
TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="${TSAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${TSAN_FLAGS}"
cmake --build build-tsan -j "${JOBS}"
TSAN_OPTIONS=halt_on_error=1 ctest --test-dir build-tsan \
  -R '(fault|resilience|parallel|master|throttle|obs|obs_concurrency|spill|serve|lifecycle|overload)_test' \
  --output-on-failure -j "${JOBS}"

echo "==> [9/10] fixed-seed chaos smoke (tier1-gated)"
# Runs only once the tier1 + sanitizer stages above are green. Every mode
# executes under a 2% read-fault injector and must recover or fail
# retryably; the fixed seed keeps the pass reproducible, the watchdog
# turns any hang into a replayable failure, and --replay-out leaves a
# one-line machine-readable repro behind if a divergence trips after the
# logs scroll away.
./build/bench/stress_differential --seed=20260807 --iters=10 --chaos \
  --fault-rate=0.02 --timeout-ms=120000 --replay-out=build/stress_replay.txt
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/bench/stress_differential \
  --seed=20260807 --iters=3 --chaos --fault-rate=0.02 --timeout-ms=300000 \
  --replay-out=build-tsan/stress_replay.txt
# A short soak under tsan: shedding is not required (tsan's slowdown skews
# the fault schedule) — this run exists to race the overload controller,
# breakers and preemption machinery under a real storm.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/bench/bench_soak --rows=1500 \
  --duration-s=2 --clients=4 --require-shedding=0 \
  --out=build-tsan/BENCH_soak.json

echo "==> [10/10] artifact hygiene"
# Build trees, object files and trace/metric dumps are gitignored; a full
# build + test cycle must not add anything to git status. New entries are
# build artifacts escaping into the source tree — fail loudly.
STATUS_AFTER="$(git status --porcelain)"
NEW_ARTIFACTS="$(comm -13 <(sort <<< "${STATUS_BEFORE}") \
                          <(sort <<< "${STATUS_AFTER}"))"
if [[ -n "${NEW_ARTIFACTS}" ]]; then
  echo "ERROR: the build dirtied the checkout:" >&2
  echo "${NEW_ARTIFACTS}" >&2
  exit 1
fi

echo "==> CI green"
