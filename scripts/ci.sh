#!/usr/bin/env bash
# CI entry point: build + run the tier1 test suite in the default config,
# then rebuild under AddressSanitizer + UndefinedBehaviorSanitizer and run
# everything — tier1 plus the slow randomized harnesses (the differential
# stress driver). The sanitizer pass exists to catch the class of bugs this
# repo has been bitten by before: out-of-range std::clamp (UB), data races
# on metric counters, and use-after-free on handed-out trace/metric
# pointers.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-4}"

# Snapshot for the artifact-hygiene gate: anything *new* in git status
# after the full build is a build artifact escaping the gitignored trees.
STATUS_BEFORE="$(git status --porcelain)"

echo "==> [1/3] default config (tier1)"
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "${JOBS}"
ctest --test-dir build -L tier1 --output-on-failure -j "${JOBS}"

echo "==> [2/3] asan+ubsan config (tier1 + slow)"
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
cmake --build build-asan -j "${JOBS}"
# abort_on_error gives ctest a real failure exit code; detect_leaks stays on
# by default where supported. No -L filter: this pass also runs the
# slow-labeled stress_differential (50 iterations).
ASAN_OPTIONS=abort_on_error=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}"

echo "==> [3/3] artifact hygiene"
# Build trees, object files and trace/metric dumps are gitignored; a full
# build + test cycle must not add anything to git status. New entries are
# build artifacts escaping into the source tree — fail loudly.
STATUS_AFTER="$(git status --porcelain)"
NEW_ARTIFACTS="$(comm -13 <(sort <<< "${STATUS_BEFORE}") \
                          <(sort <<< "${STATUS_AFTER}"))"
if [[ -n "${NEW_ARTIFACTS}" ]]; then
  echo "ERROR: the build dirtied the checkout:" >&2
  echo "${NEW_ARTIFACTS}" >&2
  exit 1
fi

echo "==> CI green"
